package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestSampleTraceDeterministicAndBounded(t *testing.T) {
	id := MintID()
	first := SampleTrace(id, 0.5)
	for i := 0; i < 10; i++ {
		if SampleTrace(id, 0.5) != first {
			t.Fatal("sampling decision not deterministic for a fixed ID")
		}
	}
	if !SampleTrace(id, 1) || !SampleTrace(id, 2) {
		t.Fatal("rate >= 1 must always sample")
	}
	if SampleTrace(id, 0) || SampleTrace(id, -1) || SampleTrace("", 0.5) {
		t.Fatal("rate <= 0 or empty ID must never sample")
	}
	// The hash must actually spread: at 50% a thousand IDs should land
	// well inside (here, generously, 25%-75%) on each side.
	kept := 0
	for i := 0; i < 1000; i++ {
		if SampleTrace(MintID(), 0.5) {
			kept++
		}
	}
	if kept < 250 || kept > 750 {
		t.Fatalf("rate 0.5 kept %d/1000 — hash not spreading", kept)
	}
}

func TestTraceRecordingGatesLayerEvents(t *testing.T) {
	tr := NewTrace("")
	tr.AddLayerEvents([]LayerEvent{{Layer: "fc1"}})
	if got := tr.LayerEvents(); len(got) != 0 {
		t.Fatalf("non-recording trace kept %d events", len(got))
	}
	tr.SetRecording(true)
	tr.AddLayerEvents([]LayerEvent{{Layer: "fc1", Outcome: "miss"}, {Layer: "fc2", Outcome: "hit"}})
	if got := tr.LayerEvents(); len(got) != 2 || got[0].Layer != "fc1" {
		t.Fatalf("recording trace events = %+v", got)
	}
	var nilTr *Trace
	if nilTr.Recording() {
		t.Fatal("nil trace must not record")
	}
	nilTr.AddLayerEvents([]LayerEvent{{}}) // must not panic
}

func TestTraceStoreRingEviction(t *testing.T) {
	s := NewTraceStore(3)
	base := time.Now()
	for i, id := range []string{"t1", "t2", "t3", "t4"} {
		s.Put(StoredTrace{ID: id, Start: base.Add(time.Duration(i) * time.Second), Keep: KeepSampled})
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if _, ok := s.Get("t1"); ok {
		t.Fatal("oldest trace survived eviction")
	}
	if _, ok := s.Get("t4"); !ok {
		t.Fatal("newest trace missing")
	}
	idx := s.Index(0)
	if len(idx) != 3 || idx[0].ID != "t4" || idx[2].ID != "t2" {
		t.Fatalf("index order wrong: %+v", idx)
	}
	if got := s.Index(2); len(got) != 2 || got[0].ID != "t4" {
		t.Fatalf("Index(2) = %+v", got)
	}
}

func TestTraceStoreAppendAndSortedGet(t *testing.T) {
	s := NewTraceStore(4)
	t0 := time.Now()
	s.Put(StoredTrace{ID: "tr", Spans: []Span{
		{TraceID: "tr", SpanID: "b", Name: "late", Start: t0.Add(time.Millisecond)},
	}})
	// A losing hedge's span lands after the trace was stored.
	s.Append("tr", Span{TraceID: "tr", SpanID: "a", Name: "early", Start: t0})
	s.Append("unknown", Span{SpanID: "x"}) // dropped, no panic
	got, ok := s.Get("tr")
	if !ok || len(got.Spans) != 2 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if got.Spans[0].Name != "early" || got.Spans[1].Name != "late" {
		t.Fatalf("spans not sorted by start: %+v", got.Spans)
	}
	// Get must snapshot: mutating the result must not touch the store.
	got.Spans[0].Name = "mutated"
	again, _ := s.Get("tr")
	if again.Spans[0].Name != "early" {
		t.Fatal("Get returned an aliased span slice")
	}
	var nilStore *TraceStore
	nilStore.Put(StoredTrace{ID: "x"})
	nilStore.Append("x", Span{})
	if _, ok := nilStore.Get("x"); ok || nilStore.Len() != 0 || nilStore.Index(1) != nil {
		t.Fatal("nil store must be inert")
	}
}

func TestTraceStorePutSameIDReplaces(t *testing.T) {
	s := NewTraceStore(2)
	s.Put(StoredTrace{ID: "tr", Status: 200})
	s.Put(StoredTrace{ID: "tr", Status: 503})
	if s.Len() != 1 {
		t.Fatalf("Len = %d after duplicate Put", s.Len())
	}
	got, _ := s.Get("tr")
	if got.Status != 503 {
		t.Fatalf("second Put did not replace: status %d", got.Status)
	}
}

func TestSLOTrackerWindowsAndBurnRate(t *testing.T) {
	s := NewSLOTracker(100*time.Millisecond, 0.99)
	if s == nil {
		t.Fatal("valid config returned nil tracker")
	}
	now := time.Unix(1_000_000, 0)
	s.now = func() time.Time { return now }

	// 40 minutes ago: inside 1h, outside 5m.
	now = time.Unix(1_000_000, 0).Add(-40 * time.Minute)
	for i := 0; i < 100; i++ {
		s.Record("resnet", 10*time.Millisecond, true)
	}
	// Now: 90 good, 5 slow, 5 errored — attainment 0.90 in the 5m window.
	now = time.Unix(1_000_000, 0)
	for i := 0; i < 90; i++ {
		s.Record("resnet", 10*time.Millisecond, true)
	}
	for i := 0; i < 5; i++ {
		s.Record("resnet", 500*time.Millisecond, true) // met success, blew latency
	}
	for i := 0; i < 5; i++ {
		s.Record("resnet", 10*time.Millisecond, false) // fast but errored
	}

	rep := s.Report()
	m, ok := rep.Models["resnet"]
	if !ok {
		t.Fatalf("model missing from report: %+v", rep)
	}
	if m.Total != 200 || m.Good != 190 {
		t.Fatalf("lifetime good/total = %d/%d, want 190/200", m.Good, m.Total)
	}
	if len(m.Windows) != 2 {
		t.Fatalf("want 2 windows, got %+v", m.Windows)
	}
	w5, w1h := m.Windows[0], m.Windows[1]
	if w5.Window != "5m0s" || w5.Total != 100 || w5.Good != 90 {
		t.Fatalf("5m window = %+v", w5)
	}
	if got := w5.Attainment; got < 0.899 || got > 0.901 {
		t.Fatalf("5m attainment = %v", got)
	}
	// burn = (1-0.90)/(1-0.99) = 10: the budget burns 10x the allowed rate.
	if got := w5.BurnRate; got < 9.9 || got > 10.1 {
		t.Fatalf("5m burn rate = %v, want 10", got)
	}
	if w1h.Total != 200 || w1h.Good != 190 {
		t.Fatalf("1h window = %+v", w1h)
	}
	if got := w1h.BurnRate; got < 4.9 || got > 5.1 {
		t.Fatalf("1h burn rate = %v, want 5", got)
	}

	// Advance 2h: both windows drain to zero, lifetime totals persist.
	now = time.Unix(1_000_000, 0).Add(2 * time.Hour)
	rep = s.Report()
	m = rep.Models["resnet"]
	if m.Windows[1].Total != 0 || m.Total != 200 {
		t.Fatalf("stale buckets leaked into window: %+v", m)
	}

	if s.Models()[0] != "resnet" {
		t.Fatalf("Models() = %v", s.Models())
	}
}

func TestSLOTrackerNilAndInvalidConfig(t *testing.T) {
	for _, tc := range []struct {
		target time.Duration
		obj    float64
	}{{0, 0.99}, {time.Second, 0}, {time.Second, 1}, {time.Second, 1.5}, {-time.Second, 0.5}} {
		if s := NewSLOTracker(tc.target, tc.obj); s != nil {
			t.Fatalf("config %v/%v should disable SLOs", tc.target, tc.obj)
		}
	}
	var s *SLOTracker
	s.Record("m", time.Millisecond, true) // must not panic
	if s.Report() != nil || s.Target() != 0 || s.Objective() != 0 || s.Models() != nil {
		t.Fatal("nil tracker must be inert")
	}
}

func TestWriteFederatedRoundTripsStrictParser(t *testing.T) {
	mk := func(backend string, hits float64) FederatedScrape {
		r := NewRegistry()
		r.Counter("deepsz_cache_hits_total", "cache hits", Label{"model", "resnet"}).Add(uint64(hits))
		h := r.Histogram("deepsz_predict_duration_seconds", "latency", []float64{0.1, 1})
		h.ObserveExemplar(0.05, "abc123")
		var b strings.Builder
		if err := r.WriteExposition(&b); err != nil {
			t.Fatal(err)
		}
		sc := mustParse(t, b.String())
		return FederatedScrape{Backend: backend, Scrape: sc}
	}
	var out strings.Builder
	if err := WriteFederated(&out, []FederatedScrape{mk("b2:9090", 7), mk("b1:9090", 3)}); err != nil {
		t.Fatalf("WriteFederated: %v", err)
	}
	fed := mustParse(t, out.String()) // the federated output itself passes strict parse
	f := fed.Family("deepsz_cache_hits_total")
	if f == nil || len(f.Samples) != 2 {
		t.Fatalf("federated counter family = %+v", f)
	}
	// Backends sorted, label injected in sorted position.
	if f.Samples[0].Labels[0] != (Label{"backend", "b1:9090"}) || f.Samples[0].Labels[1] != (Label{"model", "resnet"}) {
		t.Fatalf("first sample labels = %+v", f.Samples[0].Labels)
	}
	if f.Samples[1].Labels[0].Value != "b2:9090" || f.Samples[1].Value != 7 {
		t.Fatalf("second sample = %+v", f.Samples[1])
	}
	// Exemplars survive federation.
	hf := fed.Family("deepsz_predict_duration_seconds")
	var sawExemplar bool
	for _, sm := range hf.Samples {
		if sm.Exemplar != nil {
			sawExemplar = true
			if sm.Exemplar.Labels[0] != (Label{"trace_id", "abc123"}) {
				t.Fatalf("exemplar labels = %+v", sm.Exemplar.Labels)
			}
		}
	}
	if !sawExemplar {
		t.Fatal("exemplar lost in federation")
	}
}

func TestWriteFederatedTypeConflict(t *testing.T) {
	a := mustParse(t, "# HELP x a\n# TYPE x counter\nx 1\n")
	b := mustParse(t, "# HELP x a\n# TYPE x gauge\nx 1\n")
	var out strings.Builder
	err := WriteFederated(&out, []FederatedScrape{{"b1", a}, {"b2", b}})
	if err == nil || !strings.Contains(err.Error(), "family x") {
		t.Fatalf("type conflict not rejected: %v", err)
	}
}

func TestWriteFederatedReplacesBackendLabel(t *testing.T) {
	// A replica that (wrongly) exposes its own backend label must not
	// collide with the federator's: the authoritative value wins.
	sc := mustParse(t, "# HELP x a\n# TYPE x counter\nx{backend=\"liar\"} 1\n")
	var out strings.Builder
	if err := WriteFederated(&out, []FederatedScrape{{"real:9090", sc}}); err != nil {
		t.Fatal(err)
	}
	fed := mustParse(t, out.String())
	sm := fed.Family("x").Samples[0]
	if len(sm.Labels) != 1 || sm.Labels[0].Value != "real:9090" {
		t.Fatalf("backend label not replaced: %+v", sm.Labels)
	}
}
