// Package telemetry is the observability layer shared by the serving
// tiers: a hand-rolled, dependency-free metrics registry with Prometheus
// text exposition (metrics.go), a strict parser for that format so tests
// and CI can hold the exposition to its contract (parse.go), per-request
// stage tracing (trace.go), and build identification (build.go).
//
// The design constraint throughout is hot-path cost: counters are single
// atomic adds, histograms are one linear scan over ~16 bucket bounds plus
// two atomic ops, and everything that can be sampled lazily at scrape
// time (cache counters, fleet health) is registered as a func-backed
// family that costs nothing between scrapes. BenchmarkServing is the
// enforcement: instrumentation that moves it does not belong here.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair on a metric sample.
type Label struct {
	Name, Value string
}

// Sample is one exposition line's worth of data, produced by func-backed
// families at scrape time.
type Sample struct {
	Labels []Label
	Value  float64
}

// DurationBuckets are the default latency histogram bounds, in seconds:
// 50µs to 10s, roughly log-spaced. The low end resolves a warm cache-hit
// predict (~100µs); the high end covers a cold whole-model decode.
var DurationBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// Counter is a monotonically increasing value. The zero value is ready to
// use; a nil *Counter is a valid no-op, so instruments can be optional
// without call sites checking.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Exemplar links one histogram bucket to a concrete observation — in
// practice the trace ID of a request that landed in it, so a p99 bucket
// in a dashboard points at a retrievable /v1/traces/{id} timeline.
type Exemplar struct {
	Labels []Label
	Value  float64
}

// Histogram is a fixed-bucket distribution. Observations are lock-free:
// one scan over the bounds, one atomic bucket increment, one atomic CAS
// for the sum. A nil *Histogram is a valid no-op.
type Histogram struct {
	bounds  []float64       // sorted ascending; counts has len(bounds)+1 (last = +Inf)
	counts  []atomic.Uint64 // per-bucket (non-cumulative) observation counts
	sumBits atomic.Uint64   // float64 bits of the running sum
	// exemplars holds the last exemplar-bearing observation per bucket.
	// Only ObserveExemplar touches it — the plain Observe hot path never
	// pays for exemplars, which is what keeps span-off requests free.
	exemplars []atomic.Pointer[Exemplar]
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// ObserveExemplar records one value and attaches traceID as the bucket's
// exemplar (last writer wins). Call it only for sampled requests: the
// exemplar store is one pointer swap, but minting the label slice is an
// allocation the unsampled hot path should not pay.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	if traceID != "" && h.exemplars != nil {
		h.exemplars[i].Store(&Exemplar{Labels: []Label{{Name: "trace_id", Value: traceID}}, Value: v})
	}
}

// exemplarAt returns bucket i's exemplar, or nil.
func (h *Histogram) exemplarAt(i int) *Exemplar {
	if h.exemplars == nil {
		return nil
	}
	return h.exemplars[i].Load()
}

// snapshot returns cumulative bucket counts, total count and sum.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.counts))
	for i := range h.counts {
		count += h.counts[i].Load()
		cum[i] = count
	}
	return cum, count, math.Float64frombits(h.sumBits.Load())
}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// child is one registered label set of a family.
type child struct {
	labels []Label // sorted by name
	key    string  // canonical label signature
	ctr    *Counter
	hist   *Histogram
}

// family is one metric name: its metadata plus either static children
// (Counter/Histogram instruments) or a scrape-time sampler func.
type family struct {
	name, help, typ string
	bounds          []float64 // histogram families only
	mu              sync.Mutex
	children        []*child
	byKey           map[string]*child
	sample          func() []Sample // func-backed families; nil for static
}

// Registry holds metric families and writes them in Prometheus text
// exposition format. Families are keyed by name; registering the same
// name with a different type or help panics (a programming error, caught
// at startup, not a runtime condition).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

func (r *Registry) family(name, help, typ string) *family {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("telemetry: metric %s re-registered as %s (was %s)", name, typ, f.typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, byKey: map[string]*child{}}
	r.families[name] = f
	return f
}

// labelKey canonicalises a sorted label set.
func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	for _, l := range out {
		if !nameRe.MatchString(l.Name) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", l.Name))
		}
	}
	return out
}

func (f *family) child(labels []Label) *child {
	ls := sortedLabels(labels)
	key := labelKey(ls)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.byKey[key]; ok {
		return c
	}
	c := &child{labels: ls, key: key}
	switch f.typ {
	case typeCounter:
		c.ctr = &Counter{}
	case typeHistogram:
		c.hist = &Histogram{
			bounds:    f.bounds,
			counts:    make([]atomic.Uint64, len(f.bounds)+1),
			exemplars: make([]atomic.Pointer[Exemplar], len(f.bounds)+1),
		}
	}
	f.byKey[key] = c
	f.children = append(f.children, c)
	return c
}

// Counter registers (or returns the existing) counter under name with the
// given labels. Repeated calls with the same name+labels return the same
// instrument, so two engines serving the same codec share one counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.family(name, help, typeCounter).child(labels).ctr
}

// Histogram registers (or returns the existing) histogram under name.
// bounds must be sorted ascending; they are fixed for the family by the
// first registration.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	f := r.family(name, help, typeHistogram)
	f.mu.Lock()
	if f.bounds == nil {
		if !sort.Float64sAreSorted(bounds) {
			f.mu.Unlock()
			panic(fmt.Sprintf("telemetry: histogram %s bounds not sorted", name))
		}
		f.bounds = append([]float64(nil), bounds...)
	}
	f.mu.Unlock()
	return f.child(labels).hist
}

// CounterFunc registers a scrape-time sampled counter family: f is called
// on every scrape and must return monotonically non-decreasing values per
// label set (the strict parser's cross-scrape check enforces this in
// tests). Registering the same name again replaces the sampler.
func (r *Registry) CounterFunc(name, help string, f func() []Sample) {
	r.family(name, help, typeCounter).sample = f
}

// GaugeFunc registers a scrape-time sampled gauge family. Registering the
// same name again replaces the sampler.
func (r *Registry) GaugeFunc(name, help string, f func() []Sample) {
	r.family(name, help, typeGauge).sample = f
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func writeLabels(b *strings.Builder, labels []Label, extra ...Label) {
	all := append(append([]Label(nil), labels...), extra...)
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	if len(all) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, `%s="%s"`, l.Name, escapeLabel(l.Value))
	}
	b.WriteByte('}')
}

// writeExemplar appends an OpenMetrics-style exemplar suffix
// (` # {trace_id="..."} value`) to a histogram bucket line. No-op for a
// nil exemplar, so unsampled buckets emit plain Prometheus text.
func writeExemplar(b *strings.Builder, ex *Exemplar) {
	if ex == nil {
		return
	}
	b.WriteString(" # ")
	if len(ex.Labels) == 0 {
		b.WriteString("{}")
	} else {
		writeLabels(b, ex.Labels)
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(ex.Value))
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteExposition writes the whole registry in Prometheus text exposition format:
// families sorted by name, children sorted by label signature, labels
// sorted within each sample — the canonical order the strict parser
// demands, so the writer can never drift from what the parser accepts.
func (r *Registry) WriteExposition(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		if f.sample != nil {
			samples := f.sample()
			lines := make([]string, 0, len(samples))
			for _, s := range samples {
				var sb strings.Builder
				sb.WriteString(f.name)
				writeLabels(&sb, sortedLabels(s.Labels))
				sb.WriteByte(' ')
				sb.WriteString(formatValue(s.Value))
				lines = append(lines, sb.String())
			}
			sort.Strings(lines)
			for _, l := range lines {
				b.WriteString(l)
				b.WriteByte('\n')
			}
			continue
		}
		f.mu.Lock()
		children := append([]*child(nil), f.children...)
		f.mu.Unlock()
		sort.Slice(children, func(i, j int) bool { return children[i].key < children[j].key })
		for _, c := range children {
			switch f.typ {
			case typeCounter:
				b.WriteString(f.name)
				writeLabels(&b, c.labels)
				fmt.Fprintf(&b, " %s\n", formatValue(float64(c.ctr.Value())))
			case typeHistogram:
				cum, count, sum := c.hist.snapshot()
				for i, bound := range c.hist.bounds {
					b.WriteString(f.name)
					b.WriteString("_bucket")
					writeLabels(&b, c.labels, Label{"le", formatValue(bound)})
					fmt.Fprintf(&b, " %d", cum[i])
					writeExemplar(&b, c.hist.exemplarAt(i))
					b.WriteByte('\n')
				}
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(&b, c.labels, Label{"le", "+Inf"})
				fmt.Fprintf(&b, " %d", count)
				writeExemplar(&b, c.hist.exemplarAt(len(c.hist.bounds)))
				b.WriteByte('\n')
				b.WriteString(f.name)
				b.WriteString("_sum")
				writeLabels(&b, c.labels)
				fmt.Fprintf(&b, " %s\n", formatValue(sum))
				b.WriteString(f.name)
				b.WriteString("_count")
				writeLabels(&b, c.labels)
				fmt.Fprintf(&b, " %d\n", count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
