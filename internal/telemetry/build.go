package telemetry

import (
	"runtime/debug"
	"sync"
)

// Build identifies the running binary: what an autoscaler (or a human
// mid-incident) needs to know about which build is serving before
// trusting any number it reports.
type Build struct {
	// Version is the main module version ("(devel)" for plain `go build`).
	Version string `json:"version"`
	// Revision is the VCS commit the binary was built from, suffixed
	// "+dirty" when the working tree was modified; empty outside a
	// checkout.
	Revision string `json:"revision,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

var (
	buildOnce sync.Once
	buildInfo Build
)

// BuildInfo returns the binary's build identification, read once from
// runtime/debug.ReadBuildInfo.
func BuildInfo() Build {
	buildOnce.Do(func() {
		buildInfo = Build{Version: "unknown", GoVersion: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.Version = bi.Main.Version
		buildInfo.GoVersion = bi.GoVersion
		var rev string
		dirty := false
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				rev = kv.Value
			case "vcs.modified":
				dirty = kv.Value == "true"
			}
		}
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty && rev != "" {
			rev += "+dirty"
		}
		buildInfo.Revision = rev
	})
	return buildInfo
}

// RegisterBuildInfo adds the conventional <prefix>_build_info gauge
// (constant 1, labelled by version/revision/goversion) to r.
func RegisterBuildInfo(r *Registry, prefix string) {
	b := BuildInfo()
	r.GaugeFunc(prefix+"_build_info",
		"Constant 1; labels identify the running build.",
		func() []Sample {
			return []Sample{{Labels: []Label{
				{"goversion", b.GoVersion},
				{"revision", b.Revision},
				{"version", b.Version},
			}, Value: 1}}
		})
}
