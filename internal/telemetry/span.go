package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"hash/fnv"
	"io"
	"time"
)

// ParentHeader carries the gateway attempt's span ID down to the replica,
// so the replica's root span links under the exact attempt that produced
// it (hedged attempts get distinct span IDs under one trace ID).
const ParentHeader = "X-Deepsz-Parent-Span"

// StagesHeader is the replica's compact per-stage breakdown, attached to
// every predict response as "stage=ns" pairs joined by ';'. It is what
// lets the gateway log a cross-tier slow request without a synchronous
// trace fetch. Encode time is excluded (the header is written before the
// response body is serialised).
const StagesHeader = "X-Deepsz-Stages"

// Span is one timed operation in a request's cross-tier life: the
// gateway's root span parents one span per backend attempt, each attempt
// parents the replica's request span, which parents the per-stage spans
// and the per-layer decode/cache events. Together the spans for one trace
// ID form the single fleet-wide timeline /v1/traces/{id} assembles.
type Span struct {
	TraceID string    `json:"trace_id"`
	SpanID  string    `json:"span_id"`
	Parent  string    `json:"parent,omitempty"`
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	// Dur is the span's wall time in nanoseconds (time.Duration marshals
	// as its integer nanosecond count).
	Dur   time.Duration     `json:"dur_ns"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// MintSpanID returns a fresh 8-hex-char span ID — half the width of a
// trace ID, so the two are visually distinct in logs.
func MintSpanID() string {
	var b [4]byte
	rand.Read(b[:]) // crypto/rand.Read never fails on supported platforms
	return hex.EncodeToString(b[:])
}

// SampleTrace decides whether the trace with the given ID records spans,
// at a base rate in [0, 1]. The decision is a deterministic hash of the
// ID, not a coin flip: the gateway and every replica make the same
// keep/drop call for one trace with no coordination, so a sampled
// gateway trace always finds its replica spans at assembly time.
func SampleTrace(id string, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 || id == "" {
		return false
	}
	h := fnv.New64a()
	io.WriteString(h, id)
	// Top 53 bits → uniform in [0, 1) with full float64 precision.
	return float64(h.Sum64()>>11)/float64(uint64(1)<<53) < rate
}

// LayerEvent is one per-layer observation made inside a forward pass:
// which compressed layer was fetched, how the decode cache answered
// (hit, miss, coalesced, prefetch_hit, prefetch_overlap, corrupt_eject),
// and what the paper's tradeoff looked like for it (codec, density,
// resident format). Dur is the full weight-fetch time; DecodeDur is the
// decompression portion alone, so the per-layer decode spans of a trace
// sum to exactly its decode stage total.
type LayerEvent struct {
	Layer     string
	Codec     string
	Outcome   string
	Format    string
	Density   float64
	Start     time.Time
	Dur       time.Duration
	DecodeDur time.Duration
}
