package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Metrics federation: the gateway scrapes each healthy replica's
// /metrics, validates every scrape with the strict parser (a replica
// whose exposition would mis-ingest in a real monitoring stack is a bug
// to surface, not bytes to relay), and re-exports the union with a
// `backend` label distinguishing the source. The merged output is itself
// written in canonical order so it round-trips through ParseExposition —
// the federated surface is held to the same contract as the per-replica
// ones.

// FederatedScrape is one backend's parsed /metrics scrape.
type FederatedScrape struct {
	Backend string
	Scrape  *Scrape
}

// WriteFederated merges the scrapes into one exposition, tagging every
// sample with its source via a `backend` label. Family metadata (help,
// type) comes from the first backend exposing the family; a family whose
// type disagrees across backends is an error — merging a counter with a
// gauge under one name would corrupt both.
func WriteFederated(w io.Writer, scrapes []FederatedScrape) error {
	ordered := append([]FederatedScrape(nil), scrapes...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Backend < ordered[j].Backend })

	type mergedFamily struct {
		help, typ string
		// samples per backend, in backend order: preserves each backend's
		// le-ordered histogram series under its own label set.
		samples []ParsedSample
	}
	fams := map[string]*mergedFamily{}
	var names []string
	for _, fs := range ordered {
		if fs.Scrape == nil {
			continue
		}
		for _, f := range fs.Scrape.Families {
			mf, ok := fams[f.Name]
			if !ok {
				mf = &mergedFamily{help: f.Help, typ: f.Type}
				fams[f.Name] = mf
				names = append(names, f.Name)
			} else if mf.typ != f.Type {
				return fmt.Errorf("telemetry: family %s is %q on one backend, %q on another", f.Name, mf.typ, f.Type)
			}
			for _, sm := range f.Samples {
				mf.samples = append(mf.samples, ParsedSample{
					Name:     sm.Name,
					Labels:   injectLabel(sm.Labels, Label{Name: "backend", Value: fs.Backend}),
					Value:    sm.Value,
					Exemplar: sm.Exemplar,
				})
			}
		}
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		mf := fams[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(mf.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, mf.typ)
		for _, sm := range mf.samples {
			b.WriteString(sm.Name)
			writeLabels(&b, sm.Labels)
			b.WriteByte(' ')
			b.WriteString(formatValue(sm.Value))
			if sm.Exemplar != nil {
				writeExemplar(&b, &Exemplar{Labels: sm.Exemplar.Labels, Value: sm.Exemplar.Value})
			}
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// injectLabel returns labels plus l, sorted by name. The source labels
// are never mutated; a replica exposing its own `backend` label would
// collide, so it is replaced by the federator's authoritative value.
func injectLabel(labels []Label, l Label) []Label {
	out := make([]Label, 0, len(labels)+1)
	for _, x := range labels {
		if x.Name != l.Name {
			out = append(out, x)
		}
	}
	out = append(out, l)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
