package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Keep reasons: why a trace is in the store. "sampled" is the
// probabilistic base rate; the rest are the tail-capture policy — the
// requests an operator actually goes looking for are kept regardless of
// the sampling coin.
const (
	KeepSampled     = "sampled"
	KeepSlow        = "slow"
	KeepError       = "error"
	KeepShed        = "shed"
	KeepQuarantined = "quarantined"
)

// StoredTrace is one kept request: its identity, outcome, and span tree.
type StoredTrace struct {
	ID    string    `json:"id"`
	Model string    `json:"model,omitempty"`
	Start time.Time `json:"start"`
	// Dur is the request's end-to-end wall time in nanoseconds.
	Dur    time.Duration `json:"dur_ns"`
	Status int           `json:"status,omitempty"`
	// Keep names why the trace was retained (sampled, slow, error, shed,
	// quarantined) — comma-joined when several applied.
	Keep  string `json:"keep"`
	Spans []Span `json:"spans"`
}

// TraceSummary is one /v1/traces index row.
type TraceSummary struct {
	ID     string        `json:"id"`
	Model  string        `json:"model,omitempty"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
	Status int           `json:"status,omitempty"`
	Keep   string        `json:"keep"`
	Spans  int           `json:"spans"`
}

// DefaultTraceStoreSize bounds the in-process trace ring unless
// configured otherwise: enough recent history to chase a tail-latency
// report, small enough that the store can never become the memory story.
const DefaultTraceStoreSize = 256

// TraceStore is a bounded in-process ring of kept traces, newest
// evicting oldest. Lookup is by trace ID; Append accepts spans that
// finish after their trace was stored (a losing hedged attempt's span
// lands when its goroutine unwinds, which may be after the winner's
// response — and its trace — was already written).
type TraceStore struct {
	mu   sync.Mutex
	ring []*StoredTrace // fixed capacity; nil slots until full
	next int            // ring slot the next Put overwrites
	byID map[string]*StoredTrace
}

// NewTraceStore creates a store holding at most size traces
// (size <= 0 means DefaultTraceStoreSize).
func NewTraceStore(size int) *TraceStore {
	if size <= 0 {
		size = DefaultTraceStoreSize
	}
	return &TraceStore{
		ring: make([]*StoredTrace, size),
		byID: make(map[string]*StoredTrace, size),
	}
}

// Put keeps a trace, evicting the oldest when full. A second Put with
// the same ID replaces the first (a retried request reusing its ID).
func (s *TraceStore) Put(t StoredTrace) {
	if s == nil || t.ID == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.byID[t.ID]; ok {
		*old = t
		return
	}
	if victim := s.ring[s.next]; victim != nil {
		delete(s.byID, victim.ID)
	}
	st := &t
	s.ring[s.next] = st
	s.byID[t.ID] = st
	s.next = (s.next + 1) % len(s.ring)
}

// Append adds spans to an already-stored trace; spans for traces that
// were never kept (or already evicted) are dropped.
func (s *TraceStore) Append(id string, spans ...Span) {
	if s == nil || len(spans) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.byID[id]; ok {
		st.Spans = append(st.Spans, spans...)
	}
}

// Get returns a snapshot of the stored trace with its spans sorted by
// start time, or false when the ID is unknown.
func (s *TraceStore) Get(id string) (StoredTrace, bool) {
	if s == nil {
		return StoredTrace{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.byID[id]
	if !ok {
		return StoredTrace{}, false
	}
	out := *st
	out.Spans = append([]Span(nil), st.Spans...)
	sort.SliceStable(out.Spans, func(i, j int) bool { return out.Spans[i].Start.Before(out.Spans[j].Start) })
	return out, true
}

// Index returns up to n summaries, newest first (n <= 0 means all).
func (s *TraceStore) Index(n int) []TraceSummary {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 || n > len(s.ring) {
		n = len(s.ring)
	}
	out := make([]TraceSummary, 0, n)
	// Walk backwards from the slot most recently written.
	for i := 0; i < len(s.ring) && len(out) < n; i++ {
		st := s.ring[(s.next-1-i+2*len(s.ring))%len(s.ring)]
		if st == nil {
			continue
		}
		out = append(out, TraceSummary{
			ID: st.ID, Model: st.Model, Start: st.Start, Dur: st.Dur,
			Status: st.Status, Keep: st.Keep, Spans: len(st.Spans),
		})
	}
	return out
}

// Len reports how many traces are currently stored.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}
