package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Per-model SLO tracking. The operator states a latency target and an
// objective ("99% of predicts under 250ms"); the tracker answers two
// questions per model: what fraction of recent requests met the target
// (attainment), and how fast the error budget is burning. Burn rate is
// the standard multi-window form: (1 - attainment) / (1 - objective),
// so 1.0 means failing at exactly the budgeted rate, 10 means the
// budget disappears 10x faster than allowed. Two windows — a short one
// that reacts and a long one that confirms — is the smallest setup that
// can page on fast burn without flapping on noise.

// sloBucketDur is the ring resolution; sloBuckets*sloBucketDur must
// cover the longest reporting window (1h).
const (
	sloBucketDur = 10 * time.Second
	sloBuckets   = 361 // 1h window + 1 spare so the live bucket never aliases
)

// sloWindows are the reporting windows, shortest first.
var sloWindows = []time.Duration{5 * time.Minute, time.Hour}

// sloBucket is one 10s slice of one model's history.
type sloBucket struct {
	index int64 // absolute bucket index; stale slots are skipped, not zeroed
	good  uint64
	total uint64
}

type sloSeries struct {
	buckets [sloBuckets]sloBucket
	// lifetime counters back the deepsz_slo_requests_total metric
	// (monotonic, unlike the windowed ring).
	good, total uint64
}

// SLOTracker records per-model request outcomes against a latency
// target and reports windowed attainment and burn rate. Nil-safe: a nil
// tracker records nothing and reports nothing, so the serving path can
// call it unconditionally whether or not SLOs are configured.
type SLOTracker struct {
	target    time.Duration
	objective float64
	now       func() time.Time // injectable for tests

	mu     sync.Mutex
	series map[string]*sloSeries
}

// NewSLOTracker creates a tracker for the given latency target and
// availability objective (e.g. 250ms, 0.99). Returns nil — SLOs off —
// unless both are meaningful.
func NewSLOTracker(target time.Duration, objective float64) *SLOTracker {
	if target <= 0 || objective <= 0 || objective >= 1 {
		return nil
	}
	return &SLOTracker{
		target:    target,
		objective: objective,
		now:       time.Now,
		series:    make(map[string]*sloSeries),
	}
}

// Record notes one finished request: good means it succeeded AND met
// the latency target. Shed and errored requests burn budget too — an
// SLO that ignored 503s would report 100% attainment during an outage.
func (s *SLOTracker) Record(model string, dur time.Duration, success bool) {
	if s == nil {
		return
	}
	good := success && dur <= s.target
	idx := s.now().UnixNano() / int64(sloBucketDur)
	s.mu.Lock()
	defer s.mu.Unlock()
	ser := s.series[model]
	if ser == nil {
		ser = &sloSeries{}
		s.series[model] = ser
	}
	b := &ser.buckets[idx%sloBuckets]
	if b.index != idx {
		b.index, b.good, b.total = idx, 0, 0
	}
	b.total++
	ser.total++
	if good {
		b.good++
		ser.good++
	}
}

// SLOWindow is one window's attainment for one model.
type SLOWindow struct {
	Window     string  `json:"window"`
	Good       uint64  `json:"good"`
	Total      uint64  `json:"total"`
	Attainment float64 `json:"attainment"`
	// BurnRate is (1-attainment)/(1-objective): 1.0 burns the error
	// budget exactly as fast as the objective allows.
	BurnRate float64 `json:"burn_rate"`
}

// SLOModel is one model's windowed attainment plus lifetime totals.
type SLOModel struct {
	Good    uint64      `json:"good_total"`
	Total   uint64      `json:"requests_total"`
	Windows []SLOWindow `json:"windows"`
}

// SLOReport is the /v1/stats slice of the tracker.
type SLOReport struct {
	TargetMs  float64             `json:"target_ms"`
	Objective float64             `json:"objective"`
	Models    map[string]SLOModel `json:"models"`
}

// Report snapshots windowed attainment for every model seen. Nil for a
// nil tracker (SLOs not configured).
func (s *SLOTracker) Report() *SLOReport {
	if s == nil {
		return nil
	}
	nowIdx := s.now().UnixNano() / int64(sloBucketDur)
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := &SLOReport{
		TargetMs:  float64(s.target) / float64(time.Millisecond),
		Objective: s.objective,
		Models:    make(map[string]SLOModel, len(s.series)),
	}
	for model, ser := range s.series {
		m := SLOModel{Good: ser.good, Total: ser.total}
		for _, w := range sloWindows {
			span := int64(w / sloBucketDur)
			var good, total uint64
			for i := range ser.buckets {
				b := &ser.buckets[i]
				// live bucket included: index in (nowIdx-span, nowIdx]
				if b.index > nowIdx-span && b.index <= nowIdx {
					good += b.good
					total += b.total
				}
			}
			sw := SLOWindow{Window: w.String(), Good: good, Total: total}
			if total > 0 {
				sw.Attainment = float64(good) / float64(total)
				sw.BurnRate = (1 - sw.Attainment) / (1 - s.objective)
			}
			m.Windows = append(m.Windows, sw)
		}
		rep.Models[model] = m
	}
	return rep
}

// Target returns the latency target (0 for a nil tracker).
func (s *SLOTracker) Target() time.Duration {
	if s == nil {
		return 0
	}
	return s.target
}

// Objective returns the availability objective (0 for a nil tracker).
func (s *SLOTracker) Objective() float64 {
	if s == nil {
		return 0
	}
	return s.objective
}

// Models returns the models seen, sorted — the stable iteration order
// metric samplers need.
func (s *SLOTracker) Models() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.series))
	for m := range s.series {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Windows lists the reporting window labels in order.
func SLOWindows() []string {
	out := make([]string, len(sloWindows))
	for i, w := range sloWindows {
		out[i] = w.String()
	}
	return out
}

// RegisterSLOMetrics exposes one SLO tracker under the given metric
// prefix ("deepsz" on the replica, "deepszgw" on the gateway).
// Everything is sampled from the tracker at scrape time — recording a
// request never touches a metric family.
func RegisterSLOMetrics(tel *Registry, prefix string, s *SLOTracker) {
	tel.GaugeFunc(prefix+"_slo_target_seconds",
		"Configured SLO latency target: a request at or under this is good.",
		func() []Sample {
			return []Sample{{Value: s.Target().Seconds()}}
		})
	tel.GaugeFunc(prefix+"_slo_objective",
		"Configured SLO objective: the fraction of requests that must be good.",
		func() []Sample {
			return []Sample{{Value: s.Objective()}}
		})
	tel.GaugeFunc(prefix+"_slo_attainment",
		"Fraction of requests meeting the SLO target per rolling window, by model.",
		func() []Sample {
			var out []Sample
			rep := s.Report()
			for _, model := range s.Models() {
				for _, w := range rep.Models[model].Windows {
					out = append(out, Sample{
						Labels: []Label{{Name: "model", Value: model}, {Name: "window", Value: w.Window}},
						Value:  w.Attainment,
					})
				}
			}
			return out
		})
	tel.GaugeFunc(prefix+"_slo_burn_rate",
		"Error-budget burn rate per rolling window, by model: 1.0 burns the budget exactly as fast as the objective allows.",
		func() []Sample {
			var out []Sample
			rep := s.Report()
			for _, model := range s.Models() {
				for _, w := range rep.Models[model].Windows {
					out = append(out, Sample{
						Labels: []Label{{Name: "model", Value: model}, {Name: "window", Value: w.Window}},
						Value:  w.BurnRate,
					})
				}
			}
			return out
		})
	tel.CounterFunc(prefix+"_slo_requests_total",
		"Requests scored against the SLO, by model and result (good = succeeded within target).",
		func() []Sample {
			var out []Sample
			rep := s.Report()
			for _, model := range s.Models() {
				m := rep.Models[model]
				out = append(out,
					Sample{
						Labels: []Label{{Name: "model", Value: model}, {Name: "result", Value: "good"}},
						Value:  float64(m.Good),
					},
					Sample{
						Labels: []Label{{Name: "model", Value: model}, {Name: "result", Value: "bad"}},
						Value:  float64(m.Total - m.Good),
					})
			}
			return out
		})
}
