package telemetry

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file is the exposition format's enforcement arm: a deliberately
// strict parser used by tests and CI to hold /metrics to its contract.
// It rejects what a lenient scraper would shrug at — duplicate family
// blocks, unsorted or duplicated labels, samples outside their family
// block, histograms whose cumulative buckets decrease — because every
// one of those is a writer bug that a real monitoring stack would
// silently mis-ingest. CheckMonotonic compares two scrapes and rejects
// counters that went backwards.

// ParsedExemplar is a histogram bucket line's ` # {labels} value`
// exemplar suffix.
type ParsedExemplar struct {
	Labels []Label
	Value  float64
}

// ParsedSample is one parsed exposition line.
type ParsedSample struct {
	Name   string // full sample name, including _bucket/_sum/_count suffixes
	Labels []Label
	Value  float64
	// Exemplar is non-nil when the line carried an exemplar suffix; legal
	// only on histogram _bucket lines (ParseExposition enforces this).
	// Cross-scrape checks (Counters, CheckMonotonic) ignore it entirely.
	Exemplar *ParsedExemplar
}

// ParsedFamily is one metric family block from a scrape.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ParsedSample
}

// Scrape is one parsed /metrics response.
type Scrape struct {
	Families []ParsedFamily
	byName   map[string]*ParsedFamily
}

// Family returns the named family, or nil.
func (s *Scrape) Family(name string) *ParsedFamily {
	return s.byName[name]
}

// Counters flattens every counter-typed sample (including histogram
// _bucket/_count/_sum series, which must also be non-decreasing) into a
// map keyed by "name{labelkey}" for cross-scrape monotonicity checks.
func (s *Scrape) Counters() map[string]float64 {
	out := map[string]float64{}
	for _, f := range s.Families {
		if f.Type != typeCounter && f.Type != typeHistogram {
			continue
		}
		for _, sm := range f.Samples {
			out[sm.Name+"{"+labelKey(sm.Labels)+"}"] = sm.Value
		}
	}
	return out
}

// CheckMonotonic verifies that no counter present in prev decreased in
// cur. Counters may appear in cur only (new label sets are fine); a
// counter that vanished is also an error — a registry must not drop
// series between scrapes.
func CheckMonotonic(prev, cur *Scrape) error {
	p, c := prev.Counters(), cur.Counters()
	for k, pv := range p {
		cv, ok := c[k]
		if !ok {
			return fmt.Errorf("telemetry: counter %s vanished between scrapes", k)
		}
		if cv < pv {
			return fmt.Errorf("telemetry: counter %s went backwards: %v -> %v", k, pv, cv)
		}
	}
	return nil
}

// sampleFamily maps a sample name to the family it must belong to,
// stripping histogram suffixes when the family is a histogram.
func sampleFamily(name, famName, famType string) bool {
	if name == famName {
		return famType != typeHistogram // histograms never emit the bare name
	}
	if famType != typeHistogram {
		return false
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if name == famName+suf {
			return true
		}
	}
	return false
}

// ParseExposition parses one Prometheus-text-format scrape strictly.
func ParseExposition(data []byte) (*Scrape, error) {
	s := &Scrape{byName: map[string]*ParsedFamily{}}
	var order []*ParsedFamily
	var cur *ParsedFamily
	seenSamples := map[string]bool{}
	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if !nameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: bad metric name %q in HELP", lineNo, name)
			}
			if s.byName[name] != nil {
				return nil, fmt.Errorf("line %d: duplicate family %s", lineNo, name)
			}
			cur = &ParsedFamily{Name: name, Help: help}
			s.byName[name] = cur
			order = append(order, cur)
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, _ := strings.Cut(rest, " ")
			switch typ {
			case typeCounter, typeGauge, typeHistogram, "untyped", "summary":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q for %s", lineNo, typ, name)
			}
			if cur == nil || cur.Name != name {
				// TYPE without a preceding HELP for the same family: accept,
				// but it still opens (and dedups) the family block.
				if s.byName[name] != nil && (cur == nil || cur.Name != name) {
					return nil, fmt.Errorf("line %d: duplicate family %s", lineNo, name)
				}
				cur = &ParsedFamily{Name: name}
				s.byName[name] = cur
				order = append(order, cur)
			}
			if cur.Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			cur.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		sm, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if cur == nil || !sampleFamily(sm.Name, cur.Name, cur.Type) {
			return nil, fmt.Errorf("line %d: sample %s outside its family block", lineNo, sm.Name)
		}
		if sm.Exemplar != nil && (cur.Type != typeHistogram || !strings.HasSuffix(sm.Name, "_bucket")) {
			return nil, fmt.Errorf("line %d: exemplar on non-histogram-bucket sample %s", lineNo, sm.Name)
		}
		key := sm.Name + "{" + labelKey(sm.Labels) + "}"
		if seenSamples[key] {
			return nil, fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		seenSamples[key] = true
		if (cur.Type == typeCounter || cur.Type == typeHistogram) && sm.Value < 0 {
			return nil, fmt.Errorf("line %d: negative counter %s = %v", lineNo, key, sm.Value)
		}
		cur.Samples = append(cur.Samples, sm)
	}
	for _, f := range order {
		s.Families = append(s.Families, *f)
		if err := checkHistogram(f); err != nil {
			return nil, err
		}
	}
	for i := range s.Families {
		s.byName[s.Families[i].Name] = &s.Families[i]
	}
	return s, nil
}

// checkHistogram verifies cumulative bucket sanity per label set: buckets
// sorted by le, non-decreasing counts, +Inf bucket present and equal to
// _count.
func checkHistogram(f *ParsedFamily) error {
	if f.Type != typeHistogram {
		return nil
	}
	type series struct {
		lastLe  float64
		lastVal float64
		infVal  float64
		hasInf  bool
		count   float64
		hasCnt  bool
	}
	byKey := map[string]*series{}
	get := func(labels []Label) *series {
		var rest []Label
		for _, l := range labels {
			if l.Name != "le" {
				rest = append(rest, l)
			}
		}
		k := labelKey(rest)
		sr, ok := byKey[k]
		if !ok {
			sr = &series{lastLe: math.Inf(-1)}
			byKey[k] = sr
		}
		return sr
	}
	for _, sm := range f.Samples {
		switch sm.Name {
		case f.Name + "_bucket":
			le := math.Inf(1)
			found := false
			for _, l := range sm.Labels {
				if l.Name == "le" {
					found = true
					if l.Value != "+Inf" {
						v, err := strconv.ParseFloat(l.Value, 64)
						if err != nil {
							return fmt.Errorf("histogram %s: bad le %q", f.Name, l.Value)
						}
						le = v
					}
				}
			}
			if !found {
				return fmt.Errorf("histogram %s: bucket without le label", f.Name)
			}
			sr := get(sm.Labels)
			if le <= sr.lastLe {
				return fmt.Errorf("histogram %s: buckets out of le order", f.Name)
			}
			if sm.Value < sr.lastVal {
				return fmt.Errorf("histogram %s: cumulative bucket decreased at le=%v", f.Name, le)
			}
			sr.lastLe, sr.lastVal = le, sm.Value
			if math.IsInf(le, 1) {
				sr.hasInf, sr.infVal = true, sm.Value
			}
		case f.Name + "_count":
			sr := get(sm.Labels)
			sr.hasCnt, sr.count = true, sm.Value
		}
	}
	for k, sr := range byKey {
		if !sr.hasInf {
			return fmt.Errorf("histogram %s{%s}: no +Inf bucket", f.Name, k)
		}
		if sr.hasCnt && sr.infVal != sr.count {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket %v != count %v", f.Name, k, sr.infVal, sr.count)
		}
	}
	return nil
}

// parseSampleLine parses `name{l1="v1",...} value` — optionally followed
// by an exemplar suffix ` # {labels} value` — with strict label hygiene:
// names valid, labels sorted ascending, no duplicates, values quoted and
// escaped, no trailing timestamp (the registry never writes one).
func parseSampleLine(line string) (ParsedSample, error) {
	var sm ParsedSample
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return sm, fmt.Errorf("malformed sample %q", line)
	}
	sm.Name = rest[:i]
	if !nameRe.MatchString(sm.Name) {
		return sm, fmt.Errorf("bad sample name %q", sm.Name)
	}
	if rest[i] == '{' {
		var err error
		sm.Labels, rest, err = parseLabelSet(rest[i+1:], line)
		if err != nil {
			return sm, err
		}
	} else {
		rest = rest[i:]
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" {
		return sm, fmt.Errorf("missing value in %q", line)
	}
	valueTok := rest
	if j := strings.Index(rest, " # "); j >= 0 {
		valueTok = rest[:j]
		ex, err := parseExemplar(rest[j+3:], line)
		if err != nil {
			return sm, err
		}
		sm.Exemplar = ex
	}
	if strings.ContainsAny(valueTok, " \t") {
		return sm, fmt.Errorf("trailing tokens (timestamp?) in %q", line)
	}
	var err error
	if sm.Value, err = parseValueToken(valueTok); err != nil {
		return sm, err
	}
	return sm, nil
}

// parseLabelSet parses the strict `name="value",...}` body of a label
// set (the caller consumed the opening brace) and returns the labels and
// the unconsumed remainder of the line.
func parseLabelSet(rest, line string) ([]Label, string, error) {
	var labels []Label
	prevName := ""
	for {
		if len(rest) == 0 {
			return nil, "", fmt.Errorf("unterminated labels in %q", line)
		}
		if rest[0] == '}' {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("malformed label in %q", line)
		}
		lname := rest[:eq]
		if !nameRe.MatchString(lname) {
			return nil, "", fmt.Errorf("bad label name %q", lname)
		}
		if lname == prevName {
			return nil, "", fmt.Errorf("duplicate label %q", lname)
		}
		if lname < prevName {
			return nil, "", fmt.Errorf("labels not sorted: %q after %q", lname, prevName)
		}
		prevName = lname
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, "", fmt.Errorf("unquoted label value in %q", line)
		}
		rest = rest[1:]
		var val strings.Builder
		for {
			if len(rest) == 0 {
				return nil, "", fmt.Errorf("unterminated label value in %q", line)
			}
			c := rest[0]
			if c == '\\' {
				if len(rest) < 2 {
					return nil, "", fmt.Errorf("dangling escape in %q", line)
				}
				switch rest[1] {
				case '\\':
					val.WriteByte('\\')
				case 'n':
					val.WriteByte('\n')
				case '"':
					val.WriteByte('"')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in %q", rest[1], line)
				}
				rest = rest[2:]
				continue
			}
			if c == '"' {
				rest = rest[1:]
				break
			}
			val.WriteByte(c)
			rest = rest[1:]
		}
		// A label value must be followed by ',' (more labels) or '}' (end):
		// anything else — most likely an unescaped quote inside the value
		// that terminated it early — is a malformed line.
		if len(rest) == 0 || (rest[0] != ',' && rest[0] != '}') {
			return nil, "", fmt.Errorf("unescaped or malformed label value in %q", line)
		}
		labels = append(labels, Label{Name: lname, Value: val.String()})
		if rest[0] == ',' {
			rest = rest[1:]
		}
	}
}

// parseExemplar parses the `{labels} value` tail of an exemplar suffix
// with the same label strictness as sample lines. A trailing timestamp is
// rejected — the registry never writes one.
func parseExemplar(s, line string) (*ParsedExemplar, error) {
	if len(s) == 0 || s[0] != '{' {
		return nil, fmt.Errorf("malformed exemplar in %q", line)
	}
	labels, rest, err := parseLabelSet(s[1:], line)
	if err != nil {
		return nil, err
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" {
		return nil, fmt.Errorf("exemplar missing value in %q", line)
	}
	if strings.ContainsAny(rest, " \t") {
		return nil, fmt.Errorf("trailing tokens after exemplar in %q", line)
	}
	v, err := parseValueToken(rest)
	if err != nil {
		return nil, err
	}
	return &ParsedExemplar{Labels: labels, Value: v}, nil
}

// parseValueToken parses one exposition value token.
func parseValueToken(tok string) (float64, error) {
	switch tok {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", tok)
	}
	return v, nil
}
