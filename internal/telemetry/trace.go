package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader carries a request's trace ID between tiers: the gateway
// mints an ID per client request, stamps it on every backend attempt
// (hedges included, so one client request is one trace fleet-wide), and
// the replica echoes it back and threads it through its slow-request log.
const TraceHeader = "X-Deepsz-Trace"

// Stage is one segment of a predict request's life. The stages partition
// where time goes on the serving path — which is exactly the evidence the
// roadmap's next levers need: decode-ahead pipelining wants StageDecode
// vs StageKernel, cost-aware eviction wants StageDecode per layer, batch
// tuning wants StageQueue vs StageBatchWait.
type Stage int

const (
	// StageQueue is admission queueing: from the moment a predict is
	// admitted until the micro-batcher accepts it (this includes waiting
	// behind a batch that is currently being collected or flushed).
	StageQueue Stage = iota
	// StageBatchWait is batch-window residency: accepted into a forming
	// batch, waiting for company or the window timer.
	StageBatchWait
	// StageCacheLookup is time inside decode-cache lookups that is not
	// decoding: hit bookkeeping, and waiting on another caller's
	// in-flight decode (the coalesced path).
	StageCacheLookup
	// StageDecode is time spent actually decompressing layers on cache
	// misses — the cost the paper trades against resident bytes.
	StageDecode
	// StageKernel is the forward pass proper: matmuls/convolutions with
	// weights already in hand.
	StageKernel
	// StageEncode is response serialisation back to JSON.
	StageEncode

	// NumStages is the number of trace stages.
	NumStages = int(iota)
)

var stageNames = [NumStages]string{
	"queue", "batch_wait", "cache_lookup", "decode", "kernel", "encode",
}

// String returns the stage's exposition label value.
func (s Stage) String() string {
	if s < 0 || int(s) >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Stages lists every stage in pipeline order.
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// MintID returns a fresh 16-hex-char trace ID.
func MintID() string {
	var b [8]byte
	rand.Read(b[:]) // crypto/rand.Read never fails on supported platforms
	return hex.EncodeToString(b[:])
}

// Trace accumulates one request's per-stage wall time. Adds are atomic
// because a batched request's decode/kernel time is charged by the
// batcher goroutine while the request goroutine owns the trace. A nil
// *Trace is a valid no-op, so untraced calls pay only a nil check.
type Trace struct {
	ID string
	ns [NumStages]atomic.Int64

	// recording turns per-layer event collection on for this request (set
	// once at creation, before the trace is shared — the sampling
	// decision). When false, the only cost the span machinery adds to the
	// hot path is this bool's check.
	recording bool

	mu     sync.Mutex
	events []LayerEvent
}

// NewTrace creates a trace with the given ID, minting one if empty.
func NewTrace(id string) *Trace {
	if id == "" {
		id = MintID()
	}
	return &Trace{ID: id}
}

// SetRecording marks the trace as span-recording. Call once at creation,
// before the trace is handed to other goroutines.
func (t *Trace) SetRecording(on bool) {
	if t != nil {
		t.recording = on
	}
}

// Recording reports whether per-layer events are being collected (false
// for a nil trace).
func (t *Trace) Recording() bool { return t != nil && t.recording }

// AddLayerEvents appends per-layer observations from a forward pass.
// No-op unless the trace is recording. Safe for concurrent use (the
// batcher goroutine writes while the request goroutine owns the trace).
func (t *Trace) AddLayerEvents(evs []LayerEvent) {
	if t == nil || !t.recording || len(evs) == 0 {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, evs...)
	t.mu.Unlock()
}

// LayerEvents snapshots the collected per-layer events.
func (t *Trace) LayerEvents() []LayerEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]LayerEvent(nil), t.events...)
}

// Add charges d to stage s.
func (t *Trace) Add(s Stage, d time.Duration) {
	if t == nil || s < 0 || int(s) >= NumStages {
		return
	}
	t.ns[s].Add(d.Nanoseconds())
}

// Dur returns the time charged to stage s.
func (t *Trace) Dur(s Stage) time.Duration {
	if t == nil || s < 0 || int(s) >= NumStages {
		return 0
	}
	return time.Duration(t.ns[s].Load())
}

// Breakdown is the JSON shape of a trace in a predict response and in
// the slow-request log.
type Breakdown struct {
	ID string `json:"id"`
	// StagesNs maps stage name to nanoseconds. Stages a request never
	// touched report 0, so the schema is stable across paths (a
	// non-batched predict has queue=0 and batch_wait=0).
	StagesNs map[string]int64 `json:"stages_ns"`
	TotalNs  int64            `json:"total_ns,omitempty"`
}

// Breakdown snapshots the trace; total is the request's end-to-end wall
// time (0 omits the field). Returns nil for a nil trace.
func (t *Trace) Breakdown(total time.Duration) *Breakdown {
	if t == nil {
		return nil
	}
	b := &Breakdown{ID: t.ID, StagesNs: make(map[string]int64, NumStages), TotalNs: total.Nanoseconds()}
	for _, s := range Stages() {
		b.StagesNs[s.String()] = t.ns[s].Load()
	}
	return b
}
