package telemetry

import (
	"strings"
	"testing"
)

// The parser is deliberately strict: every rejection here is a writer
// bug a lenient scraper would mis-ingest silently.

func mustParse(t *testing.T, s string) *Scrape {
	t.Helper()
	sc, err := ParseExposition([]byte(s))
	if err != nil {
		t.Fatalf("unexpected parse error: %v", err)
	}
	return sc
}

func mustReject(t *testing.T, s, wantSub string) {
	t.Helper()
	_, err := ParseExposition([]byte(s))
	if err == nil {
		t.Fatalf("parser accepted invalid input:\n%s", s)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not mention %q", err, wantSub)
	}
}

func TestParseRejectsDuplicateFamilies(t *testing.T) {
	mustReject(t, `# HELP a_total x
# TYPE a_total counter
a_total 1
# HELP a_total x
# TYPE a_total counter
a_total 2
`, "duplicate family")
}

func TestParseRejectsUnsortedLabels(t *testing.T) {
	mustReject(t, `# HELP a_total x
# TYPE a_total counter
a_total{model="m",event="hit"} 1
`, "labels not sorted")
}

func TestParseRejectsDuplicateLabels(t *testing.T) {
	mustReject(t, `# HELP a_total x
# TYPE a_total counter
a_total{event="hit",event="hit"} 1
`, "duplicate label")
}

func TestParseRejectsDuplicateSamples(t *testing.T) {
	mustReject(t, `# HELP a_total x
# TYPE a_total counter
a_total{event="hit"} 1
a_total{event="hit"} 2
`, "duplicate sample")
}

func TestParseRejectsOrphanSamples(t *testing.T) {
	mustReject(t, `# HELP a_total x
# TYPE a_total counter
b_total 1
`, "outside its family block")
}

func TestParseRejectsNegativeCounter(t *testing.T) {
	mustReject(t, `# HELP a_total x
# TYPE a_total counter
a_total -1
`, "negative counter")
}

func TestParseRejectsTimestamps(t *testing.T) {
	mustReject(t, `# HELP a_total x
# TYPE a_total counter
a_total 1 1700000000
`, "trailing tokens")
}

func TestParseRejectsDecreasingBuckets(t *testing.T) {
	mustReject(t, `# HELP h_seconds x
# TYPE h_seconds histogram
h_seconds_bucket{le="0.1"} 5
h_seconds_bucket{le="1"} 3
h_seconds_bucket{le="+Inf"} 6
h_seconds_sum 1
h_seconds_count 6
`, "cumulative bucket decreased")
}

// TestParseAcceptsEqualAdjacentBuckets: the cumulative series may hold
// flat across adjacent les (empty buckets are normal — only a strict
// decrease is a writer bug), including a sample sitting exactly on a
// bucket's upper bound so the next bucket adds nothing.
func TestParseAcceptsEqualAdjacentBuckets(t *testing.T) {
	s := mustParse(t, `# HELP h_seconds x
# TYPE h_seconds histogram
h_seconds_bucket{le="0.1"} 5
h_seconds_bucket{le="1"} 5
h_seconds_bucket{le="+Inf"} 5
h_seconds_sum 0.5
h_seconds_count 5
`)
	f := s.Family("h_seconds")
	if f == nil || f.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", f)
	}
}

func TestParseRejectsInfCountMismatch(t *testing.T) {
	mustReject(t, `# HELP h_seconds x
# TYPE h_seconds histogram
h_seconds_bucket{le="0.1"} 5
h_seconds_bucket{le="+Inf"} 6
h_seconds_sum 1
h_seconds_count 7
`, "+Inf bucket")
}

func TestCheckMonotonicAcrossScrapes(t *testing.T) {
	prev := mustParse(t, `# HELP a_total x
# TYPE a_total counter
a_total{event="hit"} 5
`)
	ok := mustParse(t, `# HELP a_total x
# TYPE a_total counter
a_total{event="hit"} 7
a_total{event="miss"} 1
`)
	if err := CheckMonotonic(prev, ok); err != nil {
		t.Fatalf("monotonic scrape rejected: %v", err)
	}
	back := mustParse(t, `# HELP a_total x
# TYPE a_total counter
a_total{event="hit"} 4
`)
	if err := CheckMonotonic(prev, back); err == nil {
		t.Fatal("backwards counter accepted")
	}
	gone := mustParse(t, `# HELP b_total x
# TYPE b_total counter
b_total 1
`)
	if err := CheckMonotonic(prev, gone); err == nil {
		t.Fatal("vanished counter accepted")
	}
}

func TestParseAcceptsEscapes(t *testing.T) {
	s := mustParse(t, `# HELP a_info x
# TYPE a_info gauge
a_info{path="C:\\tmp\"x\"",version="v1"} 1
`)
	f := s.Family("a_info")
	if f == nil || len(f.Samples) != 1 {
		t.Fatal("missing sample")
	}
	if got := f.Samples[0].Labels[0].Value; got != `C:\tmp"x"` {
		t.Fatalf("unescaped to %q", got)
	}
}

func TestParseGaugeMayDecrease(t *testing.T) {
	prev := mustParse(t, "# TYPE g gauge\ng 5\n")
	cur := mustParse(t, "# TYPE g gauge\ng 2\n")
	if err := CheckMonotonic(prev, cur); err != nil {
		t.Fatalf("gauges must be exempt from monotonicity: %v", err)
	}
}

// Exemplar suffixes (` # {trace_id="..."} value`) are legal only on
// histogram _bucket lines; anywhere else they are a writer bug.

func TestParseAcceptsExemplarOnBucket(t *testing.T) {
	s := mustParse(t, `# HELP h_seconds x
# TYPE h_seconds histogram
h_seconds_bucket{le="0.1"} 5 # {trace_id="ab12cd34ef56ab78"} 0.07
h_seconds_bucket{le="+Inf"} 6
h_seconds_sum 1
h_seconds_count 6
`)
	sm := s.Family("h_seconds").Samples[0]
	if sm.Exemplar == nil {
		t.Fatal("exemplar dropped")
	}
	if sm.Exemplar.Value != 0.07 || sm.Exemplar.Labels[0] != (Label{"trace_id", "ab12cd34ef56ab78"}) {
		t.Fatalf("exemplar = %+v", sm.Exemplar)
	}
	if sm.Value != 5 {
		t.Fatalf("bucket value = %v", sm.Value)
	}
}

func TestParseRejectsExemplarOnCounter(t *testing.T) {
	mustReject(t, `# HELP a_total x
# TYPE a_total counter
a_total 1 # {trace_id="ab"} 0.5
`, "exemplar on non-histogram-bucket")
}

func TestParseRejectsExemplarOnHistogramSum(t *testing.T) {
	mustReject(t, `# HELP h_seconds x
# TYPE h_seconds histogram
h_seconds_bucket{le="+Inf"} 1
h_seconds_sum 1 # {trace_id="ab"} 0.5
h_seconds_count 1
`, "exemplar on non-histogram-bucket")
}

func TestParseRejectsExemplarWithTimestamp(t *testing.T) {
	mustReject(t, `# HELP h_seconds x
# TYPE h_seconds histogram
h_seconds_bucket{le="+Inf"} 1 # {trace_id="ab"} 0.5 1700000000
h_seconds_sum 1
h_seconds_count 1
`, "trailing tokens")
}

func TestParseRejectsUnescapedLabelValue(t *testing.T) {
	// The quote inside the value terminates it early; the next byte is
	// neither ',' nor '}' — a writer that forgot to escape.
	mustReject(t, `# HELP a_info x
# TYPE a_info gauge
a_info{path="C:"tmp"} 1
`, "unescaped or malformed label value")
}

// TestCheckMonotonicIgnoresExemplars: the cross-scrape check compares
// bucket values only — a bucket whose exemplar changed (or vanished)
// between scrapes is not a regression.
func TestCheckMonotonicIgnoresExemplars(t *testing.T) {
	prev := mustParse(t, `# HELP h_seconds x
# TYPE h_seconds histogram
h_seconds_bucket{le="+Inf"} 1 # {trace_id="aa"} 0.5
h_seconds_sum 0.5
h_seconds_count 1
`)
	cur := mustParse(t, `# HELP h_seconds x
# TYPE h_seconds histogram
h_seconds_bucket{le="+Inf"} 2 # {trace_id="bb"} 0.1
h_seconds_sum 0.6
h_seconds_count 2
`)
	if err := CheckMonotonic(prev, cur); err != nil {
		t.Fatalf("exemplar churn tripped monotonicity: %v", err)
	}
	bare := mustParse(t, `# HELP h_seconds x
# TYPE h_seconds histogram
h_seconds_bucket{le="+Inf"} 3
h_seconds_sum 0.7
h_seconds_count 3
`)
	if err := CheckMonotonic(cur, bare); err != nil {
		t.Fatalf("vanished exemplar tripped monotonicity: %v", err)
	}
}

// TestExpositionExemplarRoundTrip: a histogram written with exemplars
// must re-parse to the same bucket exemplars, and the plain Observe path
// must emit no exemplar suffix at all.
func TestExpositionExemplarRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "x", []float64{0.1, 1}, Label{"model", "m"})
	h.Observe(0.05) // plain path: no exemplar
	h.ObserveExemplar(0.5, "feedbeeffeedbeef")
	h.ObserveExemplar(5, "0123456789abcdef")
	var b strings.Builder
	if err := r.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	s := mustParse(t, b.String())
	var got []string
	for _, sm := range s.Family("h_seconds").Samples {
		if sm.Exemplar != nil {
			got = append(got, sm.Exemplar.Labels[0].Value)
		}
	}
	if len(got) != 2 || got[0] != "feedbeeffeedbeef" || got[1] != "0123456789abcdef" {
		t.Fatalf("round-tripped exemplars = %v", got)
	}
	if strings.Contains(b.String(), `le="0.1"} 1 #`) {
		t.Fatal("plain Observe emitted an exemplar")
	}
}
