package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestExpositionRoundTrip locks the writer to the strict parser: whatever
// the registry writes must parse cleanly, with families present and
// values intact.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Events.", Label{"event", "hit"})
	c.Add(3)
	r.Counter("test_events_total", "Events.", Label{"event", "miss"}).Add(1)
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5) // over the top bound: lands in +Inf only
	r.GaugeFunc("test_in_flight", "In flight.", func() []Sample {
		return []Sample{{Value: 2}}
	})
	r.CounterFunc("test_sampled_total", "Sampled.", func() []Sample {
		return []Sample{
			{Labels: []Label{{"model", "a"}}, Value: 7},
			{Labels: []Label{{"model", "b"}}, Value: 9},
		}
	})

	var b strings.Builder
	if err := r.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	s, err := ParseExposition([]byte(out))
	if err != nil {
		t.Fatalf("writer output rejected by parser: %v\n%s", err, out)
	}
	f := s.Family("test_events_total")
	if f == nil || f.Type != "counter" || len(f.Samples) != 2 {
		t.Fatalf("test_events_total family wrong: %+v", f)
	}
	if f.Samples[0].Value != 3 || f.Samples[0].Labels[0].Value != "hit" {
		t.Fatalf("counter sample wrong: %+v", f.Samples[0])
	}
	hf := s.Family("test_latency_seconds")
	if hf == nil || hf.Type != "histogram" {
		t.Fatalf("histogram family missing")
	}
	var count, sum float64
	for _, sm := range hf.Samples {
		switch sm.Name {
		case "test_latency_seconds_count":
			count = sm.Value
		case "test_latency_seconds_sum":
			sum = sm.Value
		}
	}
	if count != 3 {
		t.Fatalf("histogram count = %v, want 3", count)
	}
	if sum < 5.05 || sum > 5.06 {
		t.Fatalf("histogram sum = %v, want ~5.0505", sum)
	}
	if s.Family("test_sampled_total") == nil || s.Family("test_in_flight") == nil {
		t.Fatal("func-backed families missing")
	}
}

// TestCounterIdentity: same name+labels returns the same instrument, so
// independently constructed engines share codec counters.
func TestCounterIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", Label{"codec", "sz"})
	b := r.Counter("x_total", "x", Label{"codec", "sz"})
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatal("shared counter not shared")
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var h *Histogram
	c.Add(1)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	h.Observe(1)
	h.ObserveSince(time.Now())
	var tr *Trace
	tr.Add(StageDecode, time.Second)
	if tr.Dur(StageDecode) != 0 || tr.Breakdown(0) != nil {
		t.Fatal("nil trace must be inert")
	}
}

func TestRegistryRejectsTypeClash(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as gauge must panic")
		}
	}()
	r.GaugeFunc("clash_total", "x", func() []Sample { return nil })
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "b", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	cum, count, _ := h.snapshot()
	// le=1: 0.5 and 1.0; le=2: +1.5; le=4: +3; +Inf: +100.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
}

// TestHistogramBucketBoundary pins the Prometheus `le` convention: a
// sample exactly equal to a bucket's upper bound is counted in that
// bucket (le is "less than or equal"), and the next representable value
// above the top bound falls through to +Inf only. A histogram that put
// boundary samples one bucket high would silently shift every quantile
// estimate computed from the exposition.
func TestHistogramBucketBoundary(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge_seconds", "e", []float64{1, 2, 4})
	h.Observe(1)                    // == bound 1: le=1
	h.Observe(math.Nextafter(1, 2)) // just above 1: le=2
	h.Observe(2)                    // == bound 2: le=2
	h.Observe(4)                    // == top bound: le=4, not +Inf
	h.Observe(math.Nextafter(4, 8)) // just above the top bound: +Inf only
	h.Observe(0)                    // zero sits in the first bucket
	h.Observe(math.Nextafter(1, 0)) // just below 1: le=1
	cum, count, _ := h.snapshot()
	// le=1: {1, 0, nextafter-below-1}; le=2: +{nextafter-above-1, 2};
	// le=4: +{4}; +Inf: +{nextafter-above-4}.
	want := []uint64{3, 5, 6, 7}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}
	if count != 7 {
		t.Fatalf("count = %d, want 7", count)
	}

	// The boundary placement must survive the exposition round-trip: the
	// strict parser sees the same cumulative series the snapshot reports.
	var b strings.Builder
	if err := r.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	s, err := ParseExposition([]byte(b.String()))
	if err != nil {
		t.Fatalf("boundary histogram rejected by the strict parser: %v\n%s", err, b.String())
	}
	got := map[string]float64{}
	for _, sm := range s.Family("edge_seconds").Samples {
		if sm.Name != "edge_seconds_bucket" {
			continue
		}
		for _, l := range sm.Labels {
			if l.Name == "le" {
				got[l.Value] = sm.Value
			}
		}
	}
	for le, w := range map[string]float64{"1": 3, "2": 5, "4": 6, "+Inf": 7} {
		if got[le] != w {
			t.Fatalf("exposed bucket le=%q = %v, want %v (all %v)", le, got[le], w, got)
		}
	}
}

func TestTraceStages(t *testing.T) {
	tr := NewTrace("")
	if len(tr.ID) != 16 {
		t.Fatalf("minted ID %q, want 16 hex chars", tr.ID)
	}
	tr.Add(StageDecode, 3*time.Millisecond)
	tr.Add(StageDecode, 2*time.Millisecond)
	tr.Add(StageKernel, time.Millisecond)
	if tr.Dur(StageDecode) != 5*time.Millisecond {
		t.Fatalf("decode = %v", tr.Dur(StageDecode))
	}
	b := tr.Breakdown(10 * time.Millisecond)
	if b.StagesNs["decode"] != 5e6 || b.StagesNs["kernel"] != 1e6 || b.TotalNs != 10e6 {
		t.Fatalf("breakdown wrong: %+v", b)
	}
	if len(b.StagesNs) != NumStages {
		t.Fatalf("breakdown must cover all stages, got %d", len(b.StagesNs))
	}
	if NewTrace("abc").ID != "abc" {
		t.Fatal("explicit ID not kept")
	}
}

func TestBuildInfo(t *testing.T) {
	b := BuildInfo()
	if b.GoVersion == "" || b.Version == "" {
		t.Fatalf("build info incomplete: %+v", b)
	}
	r := NewRegistry()
	RegisterBuildInfo(r, "test")
	var sb strings.Builder
	if err := r.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseExposition([]byte(sb.String())); err != nil {
		t.Fatalf("build info exposition invalid: %v", err)
	}
	if !strings.Contains(sb.String(), "test_build_info{") {
		t.Fatalf("missing build info gauge:\n%s", sb.String())
	}
}
