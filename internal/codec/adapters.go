package codec

import (
	"repro/internal/deepcomp"
	"repro/internal/sz"
	"repro/internal/zfp"
)

// The built-in codecs register at init so every importer sees the same
// registry regardless of import order.
func init() {
	mustRegister(szCodec{})
	mustRegister(zfpCodec{})
	mustRegister(deepcompCodec{})
}

// szCodec adapts internal/sz: adaptive Lorenzo/regression prediction,
// linear-scaling quantization, Huffman coding, optional lossless stage.
type szCodec struct{}

func (szCodec) ID() ID             { return IDSZ }
func (szCodec) Name() string       { return "sz" }
func (szCodec) ErrorBounded() bool { return true }

func (szCodec) Compress(data []float32, opts Options) ([]byte, error) {
	return sz.Compress(data, sz.Options{
		ErrorBound: opts.ErrorBound,
		BlockSize:  opts.BlockSize,
		Radius:     opts.Radius,
	})
}

func (szCodec) Decompress(blob []byte) ([]float32, error) {
	return sz.Decompress(blob)
}

// zfpCodec adapts internal/zfp in accuracy mode, so Options.ErrorBound maps
// onto ZFP's absolute tolerance and the bound guarantee carries over.
type zfpCodec struct{}

func (zfpCodec) ID() ID             { return IDZFP }
func (zfpCodec) Name() string       { return "zfp" }
func (zfpCodec) ErrorBounded() bool { return true }

func (zfpCodec) Compress(data []float32, opts Options) ([]byte, error) {
	return zfp.Compress(data, zfp.Options{
		Mode:      zfp.ModeAccuracy,
		Tolerance: opts.ErrorBound,
	})
}

func (zfpCodec) Decompress(blob []byte) ([]float32, error) {
	return zfp.Decompress(blob)
}

// deepcompCodec adapts internal/deepcomp: k-means weight sharing with a
// 2^Bits codebook and Huffman coding. It has no error control — the bound
// is ignored, mirroring the baseline's behaviour in the paper's Table 5.
type deepcompCodec struct{}

func (deepcompCodec) ID() ID             { return IDDeepComp }
func (deepcompCodec) Name() string       { return "deepcomp" }
func (deepcompCodec) ErrorBounded() bool { return false }

func (deepcompCodec) Compress(data []float32, opts Options) ([]byte, error) {
	bits := opts.Bits
	if bits == 0 {
		bits = 5 // Deep Compression's published fc-layer codebook width
	}
	c, err := deepcomp.CompressLayer(data, deepcomp.Options{Bits: bits})
	if err != nil {
		return nil, err
	}
	return c.Marshal(), nil
}

func (deepcompCodec) Decompress(blob []byte) ([]float32, error) {
	c, err := deepcomp.Unmarshal(blob)
	if err != nil {
		return nil, err
	}
	return c.Decompress()
}
