package codec

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// weightLike fills a pruned-weight-shaped array: ~10% dense Gaussian
// values, the rest exact zeros (the padding convention of prune.Sparse).
func weightLike(rng *tensor.RNG, n int) []float32 {
	out := make([]float32, n)
	rng.FillNormal(out, 0, 0.05)
	for i := range out {
		if rng.Intn(10) != 0 {
			out[i] = 0
		}
	}
	return out
}

func TestRoundTripAllCodecs(t *testing.T) {
	rng := tensor.NewRNG(11)
	data := weightLike(rng, 4096)
	const eb = 1e-3
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			blob, err := c.Compress(data, Options{ErrorBound: eb})
			if err != nil {
				t.Fatal(err)
			}
			dec, err := c.Decompress(blob)
			if err != nil {
				t.Fatal(err)
			}
			if len(dec) != len(data) {
				t.Fatalf("%s: decoded %d values, want %d", name, len(dec), len(data))
			}
			if !c.ErrorBounded() {
				return
			}
			for i := range data {
				if d := math.Abs(float64(dec[i]) - float64(data[i])); d > eb*1.0001+1e-9 {
					t.Fatalf("%s[%d]: error %g exceeds bound %g", name, i, d, eb)
				}
			}
		})
	}
}

func TestRoundTripEmpty(t *testing.T) {
	for _, name := range Names() {
		c, _ := ByName(name)
		blob, err := c.Compress(nil, Options{ErrorBound: 1e-3})
		if err != nil {
			t.Fatalf("%s: compress empty: %v", name, err)
		}
		dec, err := c.Decompress(blob)
		if err != nil {
			t.Fatalf("%s: decompress empty: %v", name, err)
		}
		if len(dec) != 0 {
			t.Fatalf("%s: decoded %d values from empty input", name, len(dec))
		}
	}
}

func TestErrorBoundValidation(t *testing.T) {
	for _, name := range []string{"sz", "zfp"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if !c.ErrorBounded() {
			t.Fatalf("%s must report ErrorBounded", name)
		}
		if _, err := c.Compress([]float32{1, 2, 3}, Options{ErrorBound: 0}); err == nil {
			t.Fatalf("%s: expected error for non-positive bound", name)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, tc := range []struct {
		id   ID
		name string
	}{{IDSZ, "sz"}, {IDZFP, "zfp"}, {IDDeepComp, "deepcomp"}} {
		c, err := ByID(tc.id)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != tc.name {
			t.Fatalf("ByID(%d).Name() = %q, want %q", tc.id, c.Name(), tc.name)
		}
		c2, err := ByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if c2.ID() != tc.id {
			t.Fatalf("ByName(%q).ID() = %d, want %d", tc.name, c2.ID(), tc.id)
		}
	}
	if _, err := ByID(99); err == nil {
		t.Fatal("expected error for unknown id")
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
	if got := NameOf(IDZFP); got != "zfp" {
		t.Fatalf("NameOf(IDZFP) = %q", got)
	}
	if got := NameOf(250); got != "unknown(250)" {
		t.Fatalf("NameOf(250) = %q", got)
	}
	if Default().ID() != IDSZ {
		t.Fatal("default codec must be sz")
	}
}

// fakeCodec exercises registry collision handling.
type fakeCodec struct {
	id   ID
	name string
}

func (f fakeCodec) ID() ID                                      { return f.id }
func (f fakeCodec) Name() string                                { return f.name }
func (f fakeCodec) ErrorBounded() bool                          { return false }
func (f fakeCodec) Compress([]float32, Options) ([]byte, error) { return nil, nil }
func (f fakeCodec) Decompress([]byte) ([]float32, error)        { return nil, nil }

func TestRegisterCollisions(t *testing.T) {
	if err := Register(fakeCodec{id: IDSZ, name: "other"}); err == nil {
		t.Fatal("expected duplicate-id rejection")
	}
	if err := Register(fakeCodec{id: 240, name: "sz"}); err == nil {
		t.Fatal("expected duplicate-name rejection")
	}
	if err := Register(fakeCodec{id: 0, name: "zero"}); err == nil {
		t.Fatal("expected reserved-id rejection")
	}
	if err := Register(nil); err == nil {
		t.Fatal("expected nil rejection")
	}
	// A genuinely new codec registers and resolves.
	if err := Register(fakeCodec{id: 241, name: "fake-test-codec"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID(241); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("fake-test-codec"); err != nil {
		t.Fatal(err)
	}
}
