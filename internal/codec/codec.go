// Package codec defines the pluggable lossy-compressor abstraction behind
// DeepSZ's data-array encoding and the registry that maps serialized codec
// identifiers to implementations.
//
// The paper's evaluation (Tables 2–4, Figure 7) compares SZ-based DeepSZ
// against Deep-Compression- and ZFP-based encoders. Making the codec a
// first-class, registered back-end lets the same `.dsz` container, CLI, and
// serving daemon carry any of them: `core.Generate` compresses each fc
// layer's sparse data array through a Codec chosen per plan, and
// `core.Decode` routes each layer's blob back through `ByID`.
//
// Identifiers are part of the `.dsz` v2 stream format and must never be
// renumbered. Version-1 streams predate the codec byte and always decode
// with IDSZ.
package codec

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ID identifies a lossy codec inside serialized `.dsz` blobs.
type ID uint8

// Built-in codec identifiers. The numeric values are part of the container
// format.
const (
	// IDSZ is the SZ error-bounded compressor (the paper's choice and the
	// default; v1 streams implicitly use it).
	IDSZ ID = 1
	// IDZFP is the ZFP-style transform coder (the paper's Figure 2
	// baseline), run in accuracy mode so the error bound is honoured.
	IDZFP ID = 2
	// IDDeepComp is Deep Compression's cluster quantisation (Table 4
	// baseline). It has no error control: ErrorBound is ignored and
	// ErrorBounded reports false.
	IDDeepComp ID = 3
)

// Options tunes a compression call. Fields irrelevant to a codec are
// ignored by it; the produced blob is self-describing, so Decompress never
// needs Options.
type Options struct {
	// ErrorBound is the absolute error bound for error-bounded codecs
	// (sz, zfp). Must be positive for them.
	ErrorBound float64
	// BlockSize tunes SZ's prediction block length (0 = default).
	BlockSize int
	// Radius tunes SZ's quantization interval radius (0 = default).
	Radius int
	// Bits is the deepcomp codebook width (0 = 5, the paper's fc choice).
	Bits int
}

// Codec is an error-bounded (or, for deepcomp, best-effort) lossy
// compressor for 1-D float32 arrays. Implementations must be stateless and
// safe for concurrent use: Generate and Decode call them from worker pools.
type Codec interface {
	// ID returns the serialization identifier of this codec.
	ID() ID
	// Name returns the stable CLI/API name ("sz", "zfp", "deepcomp").
	Name() string
	// ErrorBounded reports whether Compress honours Options.ErrorBound as
	// an absolute reconstruction-error guarantee.
	ErrorBounded() bool
	// Compress encodes data into a self-describing blob.
	Compress(data []float32, opts Options) ([]byte, error)
	// Decompress reverses Compress.
	Decompress(blob []byte) ([]float32, error)
}

// ErrUnknown is returned when looking up a codec that is not registered.
var ErrUnknown = errors.New("codec: unknown codec")

var (
	mu     sync.RWMutex
	byID   = map[ID]Codec{}
	byName = map[string]Codec{}
)

// Register adds a codec to the registry. It fails if the ID or name is
// already taken — identifiers are format-level constants and must stay
// unique for the lifetime of the process.
func Register(c Codec) error {
	if c == nil {
		return errors.New("codec: cannot register nil codec")
	}
	if c.ID() == 0 {
		return errors.New("codec: id 0 is reserved (v1 streams)")
	}
	if c.Name() == "" {
		return errors.New("codec: empty name")
	}
	mu.Lock()
	defer mu.Unlock()
	if dup, ok := byID[c.ID()]; ok {
		return fmt.Errorf("codec: id %d already registered to %q", c.ID(), dup.Name())
	}
	if _, ok := byName[c.Name()]; ok {
		return fmt.Errorf("codec: name %q already registered", c.Name())
	}
	byID[c.ID()] = c
	byName[c.Name()] = c
	return nil
}

// mustRegister panics on registration failure; used for the built-ins.
func mustRegister(c Codec) {
	if err := Register(c); err != nil {
		panic(err)
	}
}

// ByID returns the codec with the given serialization identifier.
func ByID(id ID) (Codec, error) {
	mu.RLock()
	defer mu.RUnlock()
	if c, ok := byID[id]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("%w: id %d", ErrUnknown, id)
}

// ByName returns the codec with the given CLI/API name.
func ByName(name string) (Codec, error) {
	mu.RLock()
	defer mu.RUnlock()
	if c, ok := byName[name]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknown, name)
}

// Names lists the registered codec names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NameOf returns the registered name for id, or "unknown(id)" for
// unregistered identifiers. Convenient for reporting paths (serve's
// /v1/models) that must not fail on a stale registry.
func NameOf(id ID) string {
	if c, err := ByID(id); err == nil {
		return c.Name()
	}
	return fmt.Sprintf("unknown(%d)", id)
}

// Default returns the default codec (SZ, the paper's choice).
func Default() Codec {
	c, err := ByID(IDSZ)
	if err != nil {
		panic("codec: sz codec not registered")
	}
	return c
}
