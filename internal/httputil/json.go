// Package httputil is the one place the serving tiers' JSON wire
// helpers live: deepszd (internal/serve) and deepszgw
// (internal/gateway) speak the same API surface, so the response
// envelope — Content-Type handling and the {"error": ...} shape
// clients parse — must not be able to drift between them.
package httputil

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// WriteJSON writes v as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// ErrorResponse is the error envelope every API error uses.
type ErrorResponse struct {
	Error string `json:"error"`
}

// WriteError writes a formatted ErrorResponse with the given status.
func WriteError(w http.ResponseWriter, status int, format string, args ...any) {
	WriteJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// QuarantineHeader names the model a replica has quarantined for
// corruption on a 503 response. It is the routing signal the gateway
// keys on: unlike generic overload (retry the same replica soon), a
// quarantined model stays unavailable on that replica until its
// artifact is repaired, so traffic should fail over to another replica
// instead of hedging into the same corrupt copy.
const QuarantineHeader = "X-Deepsz-Quarantine"
