// Command deepszgw is the DeepSZ serving gateway: the front door of a
// fleet of deepszd replicas. It health-checks the backends, routes each
// model's predict traffic to its rendezvous-affine replicas (keeping
// that model's layers hot in a few decode caches instead of thrashing
// all of them), hedges slow or failed backends onto the next-ranked
// replica, and sheds overload with 503 + Retry-After instead of
// queueing until everything times out.
//
// Typical session, with two deepszd replicas already running:
//
//	deepszd -addr :8081 -model model.dsz -mem-budget 2m
//	deepszd -addr :8082 -model model.dsz -mem-budget 2m
//	deepszgw -addr :8080 -backends http://localhost:8081,http://localhost:8082
//	curl localhost:8080/v1/models          # same API as one deepszd
//	curl -d '{"inputs":[[...]]}' localhost:8080/v1/models/lenet-300-100/predict
//	curl localhost:8080/v1/stats           # per-replica health/latency/shed
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/gateway"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "deepszgw:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("deepszgw", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	backendsStr := fs.String("backends", "", "comma-separated deepszd base URLs (e.g. http://10.0.0.1:8081,http://10.0.0.2:8081)")
	probeInterval := fs.Duration("probe-interval", 500*time.Millisecond, "/healthz probe period per backend")
	ejectAfter := fs.Int("eject-after", 3, "consecutive probe failures that eject a backend from routing")
	readmitAfter := fs.Int("readmit-after", 2, "consecutive probe successes that re-admit an ejected backend")
	hedgeAfter := fs.Duration("hedge-after", 100*time.Millisecond, "re-issue a predict to the next-ranked replica after this wait (0 disables hedging)")
	maxPending := fs.Int("max-pending", 256, "gateway-wide cap on predicts in flight; overflow is shed with 503 (0 = unlimited)")
	maxBodyStr := fs.String("max-body-bytes", "8m", "predict request body cap with optional k/m/g suffix; overflow is refused with 413 (0 = the 8m default, not unlimited)")
	affinity := fs.Int("affinity-width", 2, "replicas that serve one model's steady-state traffic")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
	slowReq := fs.Duration("slow-request", 0, "log predicts at or above this end-to-end latency with the assembled cross-tier evidence: trace ID, every attempt's outcome, and the winner's stage breakdown (0 = off)")
	traceSample := fs.Float64("trace-sample", 0, "fraction of client requests that record full span timelines served by /v1/traces (0 = the 1% default; negative = off; slow/errored requests are kept regardless)")
	traceStore := fs.Int("trace-store", 0, "kept traces retained in memory, newest evicting oldest (0 = the 256 default)")
	sloTargetMs := fs.Float64("slo-target-ms", 0, "per-model SLO latency target in milliseconds, measured at the fleet edge; /v1/stats and /metrics report rolling attainment and burn rate (0 = SLOs off)")
	sloObjective := fs.Float64("slo-objective", 0.99, "fraction of client requests that must finish within -slo-target-ms")
	fs.Parse(os.Args[1:])

	logger, err := cliutil.SetupSlog(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	if addr, err := cliutil.StartPprof(*pprofAddr); err != nil {
		return err
	} else if addr != "" {
		logger.Info("pprof listening", "addr", addr)
	}

	var backends []string
	for _, b := range strings.Split(*backendsStr, ",") {
		if b = strings.TrimSpace(b); b != "" {
			backends = append(backends, b)
		}
	}
	if len(backends) == 0 {
		return errors.New("at least one backend is required (-backends)")
	}
	maxBody, err := cliutil.ParseBytes(*maxBodyStr)
	if err != nil {
		return err
	}
	// Flag semantics match deepszd: an explicit 0 means "off", not "use
	// the library default" (gateway.Options reserves 0 for its defaults,
	// so 0 is translated to the library's explicit off value, -1).
	if *maxPending == 0 {
		*maxPending = -1
	}
	if *hedgeAfter == 0 {
		*hedgeAfter = -1
	}

	g, err := gateway.New(backends, gateway.Options{
		ProbeInterval:   *probeInterval,
		EjectAfter:      *ejectAfter,
		ReadmitAfter:    *readmitAfter,
		HedgeAfter:      *hedgeAfter,
		MaxPending:      *maxPending,
		MaxBodyBytes:    maxBody,
		AffinityWidth:   *affinity,
		Logger:          logger,
		SlowRequest:     *slowReq,
		TraceSampleRate: *traceSample,
		TraceStoreSize:  *traceStore,
		SLOTarget:       time.Duration(*sloTargetMs * float64(time.Millisecond)),
		SLOObjective:    *sloObjective,
	})
	if err != nil {
		return err
	}
	defer g.Close()
	logger.Info("fronting backends", "count", len(backends), "backends", strings.Join(backends, ", "))

	srv := cliutil.NewHTTPServer(g)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Info("gateway listening", "addr", ln.Addr().String())
	if err := cliutil.ServeUntilDone(ctx, srv, ln, *drain); err != nil {
		return err
	}
	s := g.Stats()
	logger.Info("final gateway stats",
		"admitted", s.Admitted,
		"shed", s.Shed,
		"hedges", s.Hedges,
		"failovers", s.Failovers,
	)
	return nil
}
