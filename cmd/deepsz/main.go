// Command deepsz is the end-to-end CLI for the DeepSZ pipeline: train a
// network on its synthetic dataset, prune it, encode it into a compressed
// model file, decode the file back into weights, and evaluate accuracy.
//
// Typical session:
//
//	deepsz train  -net lenet-300-100 -out lenet.weights
//	deepsz prune  -net lenet-300-100 -in lenet.weights -out pruned.weights
//	deepsz encode -net lenet-300-100 -in pruned.weights -out model.dsz -loss 0.02
//	deepsz decode -net lenet-300-100 -model model.dsz -out restored.weights
//	deepsz eval   -net lenet-300-100 -in restored.weights
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/tensor"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "train":
		err = cmdTrain(args)
	case "prune":
		err = cmdPrune(args)
	case "encode":
		err = cmdEncode(args)
	case "decode":
		err = cmdDecode(args)
	case "eval":
		err = cmdEval(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "deepsz:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: deepsz <train|prune|encode|decode|eval> [flags]

  train  -net NAME -out FILE [-epochs N] [-samples N] [-seed N]
  prune  -net NAME -in FILE -out FILE [-retrain N] [-layers fc|all]
  encode -net NAME -in FILE -out FILE [-loss F] [-ratio F] [-workers N] [-codec NAME] [-layers fc|all]
  decode -net NAME -model FILE -out FILE
  eval   -net NAME -in FILE [-samples N]

networks: lenet-300-100, lenet-5, alexnet-s, vgg16-s
codecs:   `+strings.Join(codec.Names(), ", ")+` (default sz; decode reads
the codec from the .dsz stream)
layers:   fc compresses fully connected layers only (paper-faithful
default); all extends pruning and compression to every weighted layer,
conv included (version-3 .dsz streams carry the layer kinds and shapes)

To serve an encoded model over HTTP (the model stays compressed at rest;
fc layers are decoded on demand through a bounded cache), use the deepszd
daemon; to spread traffic across a fleet of replicas, put the deepszgw
gateway in front of them:

  deepszd  -addr :8081 -model model.dsz -mem-budget 2m
  deepszgw -addr :8080 -backends http://localhost:8081,http://localhost:8082

See README.md ("Serving compressed models" and "Serving from a replica
fleet") for the full encode → deepszd → deepszgw → curl flow.`)
}

// buildNet constructs a network with deterministic initialisation.
func buildNet(name string, seed uint64) (*nn.Network, error) {
	return models.Build(name, tensor.NewRNG(seed))
}

func loadNet(name, path string, seed uint64) (*nn.Network, error) {
	net, err := buildNet(name, seed)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := nn.LoadWeights(f, net); err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	return net, nil
}

func saveNet(net *nn.Network, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := nn.SaveWeights(f, net); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	name := fs.String("net", models.LeNet300, "network name")
	out := fs.String("out", "", "output weights file")
	epochs := fs.Int("epochs", 3, "training epochs")
	samples := fs.Int("samples", 1200, "training samples")
	seed := fs.Uint64("seed", 42, "rng seed")
	lr := fs.Float64("lr", 0.05, "learning rate")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("train: -out required")
	}
	net, err := buildNet(*name, *seed)
	if err != nil {
		return err
	}
	train, test, err := models.DataFor(*name, *samples, *samples/3)
	if err != nil {
		return err
	}
	rng := tensor.NewRNG(*seed)
	opt := nn.NewSGD(float32(*lr), 0.9, 1e-4)
	loss := nn.Train(net, train, opt, nn.TrainConfig{Epochs: *epochs, BatchSize: 32, LRDecay: 0.7}, rng)
	acc := net.Evaluate(test, 100)
	fmt.Printf("trained %s: loss %.4f, top-1 %.2f%%, top-5 %.2f%%\n",
		*name, loss, 100*acc.Top1, 100*acc.Top5)
	return saveNet(net, *out)
}

func cmdPrune(args []string) error {
	fs := flag.NewFlagSet("prune", flag.ExitOnError)
	name := fs.String("net", models.LeNet300, "network name")
	in := fs.String("in", "", "input weights file")
	out := fs.String("out", "", "output weights file")
	retrain := fs.Int("retrain", 1, "mask-retraining epochs")
	samples := fs.Int("samples", 1200, "retraining samples")
	layers := fs.String("layers", "fc", "layers to prune: fc (paper-faithful) or all")
	convKeep := fs.Float64("conv-keep", 0.4, "default keep ratio for conv layers with -layers all")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("prune: -in and -out required")
	}
	sel, err := parseLayers(*layers)
	if err != nil {
		return fmt.Errorf("prune: %w", err)
	}
	net, err := loadNet(*name, *in, 42)
	if err != nil {
		return err
	}
	if sel == core.LayersAll {
		prune.NetworkAll(net, prune.PaperRatios(*name), 0.1, *convKeep)
	} else {
		prune.Network(net, prune.PaperRatios(*name), 0.1)
	}
	if *retrain > 0 {
		train, _, err := models.DataFor(*name, *samples, 10)
		if err != nil {
			return err
		}
		prune.Retrain(net, train, *retrain, 0.03, tensor.NewRNG(7))
	}
	for _, cl := range net.CompressibleLayers() {
		if p := cl.WeightParam(); p.Mask != nil {
			fmt.Printf("pruned %s [%s] to %.1f%% density\n", cl.Name(), cl.Kind(), 100*p.Density())
		}
	}
	return saveNet(net, *out)
}

// parseLayers maps the -layers flag to a core.LayerSelection.
func parseLayers(v string) (core.LayerSelection, error) {
	switch v {
	case "fc":
		return core.LayersFC, nil
	case "all":
		return core.LayersAll, nil
	}
	return 0, fmt.Errorf("bad -layers %q (want fc or all)", v)
}

func cmdEncode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	name := fs.String("net", models.LeNet300, "network name")
	in := fs.String("in", "", "pruned weights file")
	out := fs.String("out", "", "compressed model file")
	loss := fs.Float64("loss", 0.02, "expected accuracy loss (fraction)")
	ratio := fs.Float64("ratio", 0, "expected compression ratio (enables expected-ratio mode)")
	workers := fs.Int("workers", 0, "assessment workers (0 = GOMAXPROCS)")
	samples := fs.Int("samples", 500, "test samples for assessment")
	codecName := fs.String("codec", "sz", "lossy codec for data arrays ("+strings.Join(codec.Names(), ", ")+")")
	layers := fs.String("layers", "fc", "layers to compress: fc (paper-faithful) or all")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("encode: -in and -out required")
	}
	cdc, err := codec.ByName(*codecName)
	if err != nil {
		return fmt.Errorf("encode: %w (have: %s)", err, strings.Join(codec.Names(), ", "))
	}
	sel, err := parseLayers(*layers)
	if err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	net, err := loadNet(*name, *in, 42)
	if err != nil {
		return err
	}
	_, test, err := models.DataFor(*name, 10, *samples)
	if err != nil {
		return err
	}
	cfg := core.Config{
		Layers:               sel,
		ExpectedAccuracyLoss: *loss,
		DistortionCriterion:  0.005,
		Workers:              *workers,
		Codec:                cdc.ID(),
	}
	if *ratio > 0 {
		cfg.Mode = core.ExpectedRatio
		cfg.TargetRatio = *ratio
	}
	res, err := core.Encode(net, test, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("encoded %s [%s, layers %s]: %d → %d bytes (%.1fx, pruning alone %.1fx)\n",
		*name, cdc.Name(), sel, res.OriginalBytes, res.CompressedBytes,
		res.CompressionRatio(), res.PruningRatio())
	for _, kind := range []string{"fc", "conv"} {
		if o := res.OriginalBytesPerKind[kind]; o > 0 {
			fmt.Printf("  %s: %d → %d bytes\n", kind, o, res.CompressedBytesPerKind[kind])
		}
	}
	fmt.Printf("accuracy: %.2f%% → %.2f%% (budget %.2f%%)\n",
		100*res.Before.Top1, 100*res.After.Top1, 100**loss)
	for _, c := range res.Plan.Choices {
		fmt.Printf("  %s: eb %.0e, %d B data + %d B index\n", c.Layer, c.EB, c.DataBytes, c.IndexBytes)
	}
	return os.WriteFile(*out, res.Model.Marshal(), 0o644)
}

func cmdDecode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	name := fs.String("net", models.LeNet300, "network name")
	modelPath := fs.String("model", "", "compressed model file")
	in := fs.String("in", "", "optional weights file to overlay onto (default: fresh init)")
	out := fs.String("out", "", "output weights file")
	fs.Parse(args)
	if *modelPath == "" || *out == "" {
		return fmt.Errorf("decode: -model and -out required")
	}
	m, err := core.ReadModel(*modelPath)
	if err != nil {
		return err
	}
	var net *nn.Network
	if *in != "" {
		net, err = loadNet(*name, *in, 42)
	} else {
		net, err = buildNet(*name, 42)
	}
	if err != nil {
		return err
	}
	bd, err := m.Apply(net)
	if err != nil {
		return err
	}
	fmt.Printf("decoded %s: lossless %v, lossy %v, reconstruct %v\n",
		*name, bd.Lossless, bd.Lossy, bd.Reconstruct)
	return saveNet(net, *out)
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	name := fs.String("net", models.LeNet300, "network name")
	in := fs.String("in", "", "weights file")
	samples := fs.Int("samples", 600, "test samples")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("eval: -in required")
	}
	net, err := loadNet(*name, *in, 42)
	if err != nil {
		return err
	}
	_, test, err := models.DataFor(*name, 10, *samples)
	if err != nil {
		return err
	}
	acc := net.Evaluate(test, 100)
	fmt.Printf("%s: top-1 %.2f%%, top-5 %.2f%% (%d samples)\n",
		*name, 100*acc.Top1, 100*acc.Top5, test.Len())
	return nil
}
