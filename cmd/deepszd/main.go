// Command deepszd is the DeepSZ model-serving daemon: it loads compressed
// .dsz models (the output of `deepsz encode`), keeps them compressed at
// rest, and serves JSON predict requests over HTTP, materialising fc
// layers on demand through a byte-budgeted decode cache.
//
// Typical session (after `deepsz train` / `prune` / `encode`):
//
//	deepszd -addr :8080 -model model.dsz -mem-budget 2m
//	curl localhost:8080/v1/models
//	curl -d '{"inputs":[[0,0,...]]}' localhost:8080/v1/models/lenet-300-100/predict
//	curl localhost:8080/v1/stats
//
// Each -model flag takes `[name=]path[:weights]`: an optional serving name
// (default: the network name stored in the file) and an optional trained
// weights file supplying the conv prefix for networks that have one.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/serve"
)

type modelSpec struct {
	name, path, weights string
}

// parseModelSpec parses `[name=]path[:weights]`.
func parseModelSpec(v string) (modelSpec, error) {
	var s modelSpec
	if i := strings.IndexByte(v, '='); i >= 0 {
		s.name, v = v[:i], v[i+1:]
	}
	if i := strings.IndexByte(v, ':'); i >= 0 {
		s.path, s.weights = v[:i], v[i+1:]
	} else {
		s.path = v
	}
	if s.path == "" {
		return s, fmt.Errorf("empty model path in %q", v)
	}
	return s, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "deepszd:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("deepszd", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	budgetStr := fs.String("mem-budget", "0", "decode-cache byte budget with optional k/m/g suffix (0 = unlimited)")
	maxBatch := fs.Int("max-batch", 32, "rows that trigger an immediate micro-batch flush")
	maxPending := fs.Int("max-pending", 256, "per-model cap on predicts admitted at once; overflow is shed with 503 (0 = unlimited)")
	maxBodyStr := fs.String("max-body-bytes", "8m", "predict request body cap with optional k/m/g suffix; overflow is refused with 413 (0 = the 8m default, not unlimited)")
	sparseThreshold := fs.Float64("sparse-threshold", serve.DefaultSparseThreshold,
		"cache decoded layers in CSR form below this density; the uniform fallback when -autotune-sparse=false or for shapes autotuning skips (0 disables the sparse fast path)")
	autotuneSparse := fs.Bool("autotune-sparse", true,
		"micro-benchmark each layer shape at startup and pick per-layer dense-vs-CSR thresholds from the measured crossover")
	prefetchDepth := fs.Int("prefetch-depth", 1, "decode this many layers ahead of the one computing (0 = off); outputs are identical either way")
	verifyDecoded := fs.Bool("verify-decoded", false, "checksum every decoded layer at cache fill and re-verify before each use, ejecting rot (extends the encoder's criticality-marked coverage to all layers)")
	scrubInterval := fs.Duration("scrub-interval", 0, "background integrity sweep period: re-checksum resident cache entries and retry quarantined models whose artifact changed on disk (0 = off)")
	evictionPolicy := fs.String("eviction-policy", "lru", "decode-cache replacement policy: lru or gdsf (decode-cost per byte, frequency-scaled, aged)")
	window := fs.Duration("batch-window", 2*time.Millisecond, "how long the first request waits for batch company")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
	slowReq := fs.Duration("slow-request", 0, "log predicts at or above this end-to-end latency with their trace ID and stage breakdown (0 = off)")
	traceSample := fs.Float64("trace-sample", 0, "fraction of predicts that record full span timelines served by /v1/traces (0 = the 1% default; negative = off; slow/errored requests are kept regardless)")
	traceStore := fs.Int("trace-store", 0, "kept traces retained in memory, newest evicting oldest (0 = the 256 default)")
	sloTargetMs := fs.Float64("slo-target-ms", 0, "per-model SLO latency target in milliseconds; /v1/stats and /metrics report rolling attainment and burn rate (0 = SLOs off)")
	sloObjective := fs.Float64("slo-objective", 0.99, "fraction of predicts that must finish within -slo-target-ms")
	var specs []modelSpec
	fs.Func("model", "compressed model `[name=]path[:weights]` (repeatable)", func(v string) error {
		s, err := parseModelSpec(v)
		if err != nil {
			return err
		}
		specs = append(specs, s)
		return nil
	})
	fs.Parse(os.Args[1:])
	if len(specs) == 0 {
		return errors.New("at least one -model is required")
	}
	logger, err := cliutil.SetupSlog(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	if addr, err := cliutil.StartPprof(*pprofAddr); err != nil {
		return err
	} else if addr != "" {
		logger.Info("pprof listening", "addr", addr)
	}
	budget, err := cliutil.ParseBytes(*budgetStr)
	if err != nil {
		return err
	}
	maxBody, err := cliutil.ParseBytes(*maxBodyStr)
	if err != nil {
		return err
	}

	policy, err := serve.ParseEvictionPolicy(*evictionPolicy)
	if err != nil {
		return err
	}

	reg := serve.NewRegistry(budget, serve.BatchOptions{MaxBatch: *maxBatch, Window: *window, MaxPending: *maxPending})
	defer reg.Close()
	if err := reg.SetEvictionPolicy(policy); err != nil {
		return err
	}
	reg.SetSparseThreshold(*sparseThreshold)
	reg.SetAutotuneSparse(*autotuneSparse)
	reg.SetPrefetchDepth(*prefetchDepth)
	if err := reg.SetVerifyDecoded(*verifyDecoded); err != nil {
		return err
	}
	reg.SetScrubInterval(*scrubInterval)
	if *sloTargetMs > 0 {
		reg.SetSLO(time.Duration(*sloTargetMs*float64(time.Millisecond)), *sloObjective)
		logger.Info("slo tracking enabled", "target_ms", *sloTargetMs, "objective", *sloObjective)
	}
	if *scrubInterval > 0 {
		logger.Info("integrity scrub enabled", "interval", *scrubInterval, "verify_decoded", *verifyDecoded)
	}
	for _, s := range specs {
		e, err := reg.LoadFile(s.name, s.path, s.weights)
		if err != nil {
			return err
		}
		m := e.Model()
		kinds := map[string]int{}
		for i := range m.Layers {
			kinds[m.Layers[i].Kind.String()]++
		}
		logger.Info("loaded model",
			"name", e.Name(),
			"net", m.NetName,
			"fc_layers", kinds["fc"],
			"conv_layers", kinds["conv"],
			"compressed_bytes", m.TotalBytes(),
			"dense_bytes", m.TotalDenseBytes(),
		)
	}
	if *autotuneSparse {
		for shape, st := range reg.AutotuneTunes() {
			logger.Info("autotuned kernel crossover",
				"rows", shape[0], "cols", shape[1], "sparse_threshold", st.Threshold)
		}
	}
	if budget > 0 {
		logger.Info("decode cache budget", "bytes", budget)
	} else {
		logger.Info("decode cache budget", "bytes", "unlimited")
	}

	srv := cliutil.NewHTTPServer(serve.NewServerWith(reg, serve.ServerOptions{
		MaxBodyBytes:         maxBody,
		SlowRequestThreshold: *slowReq,
		Logger:               logger,
		TraceSampleRate:      *traceSample,
		TraceStoreSize:       *traceStore,
	}))
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Info("serving", "addr", ln.Addr().String())
	if err := cliutil.ServeUntilDone(ctx, srv, ln, *drain); err != nil {
		return err
	}
	s := reg.Cache().Stats()
	logger.Info("final cache stats",
		"policy", s.Policy,
		"hits", s.Hits,
		"misses", s.Misses,
		"coalesced", s.Coalesced,
		"evictions", s.Evictions,
		"bypasses", s.Bypasses,
		"prefetches", s.Prefetches,
		"prefetch_hits", s.PrefetchHits,
		"prefetch_waste", s.PrefetchWaste,
		"prefetch_overlap", s.PrefetchOver,
		"hit_rate", s.HitRate(),
		"effective_hit_rate", s.EffectiveHitRate(),
	)
	return nil
}
