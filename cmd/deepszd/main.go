// Command deepszd is the DeepSZ model-serving daemon: it loads compressed
// .dsz models (the output of `deepsz encode`), keeps them compressed at
// rest, and serves JSON predict requests over HTTP, materialising fc
// layers on demand through a byte-budgeted decode cache.
//
// Typical session (after `deepsz train` / `prune` / `encode`):
//
//	deepszd -addr :8080 -model model.dsz -mem-budget 2m
//	curl localhost:8080/v1/models
//	curl -d '{"inputs":[[0,0,...]]}' localhost:8080/v1/models/lenet-300-100/predict
//	curl localhost:8080/v1/stats
//
// Each -model flag takes `[name=]path[:weights]`: an optional serving name
// (default: the network name stored in the file) and an optional trained
// weights file supplying the conv prefix for networks that have one.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

type modelSpec struct {
	name, path, weights string
}

// parseModelSpec parses `[name=]path[:weights]`.
func parseModelSpec(v string) (modelSpec, error) {
	var s modelSpec
	if i := strings.IndexByte(v, '='); i >= 0 {
		s.name, v = v[:i], v[i+1:]
	}
	if i := strings.IndexByte(v, ':'); i >= 0 {
		s.path, s.weights = v[:i], v[i+1:]
	} else {
		s.path = v
	}
	if s.path == "" {
		return s, fmt.Errorf("empty model path in %q", v)
	}
	return s, nil
}

// parseBytes parses a byte count with an optional k/m/g suffix (base 1024).
func parseBytes(v string) (int64, error) {
	if v == "" {
		return 0, nil
	}
	mult := int64(1)
	switch v[len(v)-1] {
	case 'k', 'K':
		mult, v = 1<<10, v[:len(v)-1]
	case 'm', 'M':
		mult, v = 1<<20, v[:len(v)-1]
	case 'g', 'G':
		mult, v = 1<<30, v[:len(v)-1]
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 || n > math.MaxInt64/mult {
		// A negative or overflowing budget would read as "unlimited"
		// downstream — the opposite of what the operator asked for.
		return 0, fmt.Errorf("bad byte size %q", v)
	}
	return n * mult, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "deepszd:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("deepszd", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	budgetStr := fs.String("mem-budget", "0", "decode-cache byte budget with optional k/m/g suffix (0 = unlimited)")
	maxBatch := fs.Int("max-batch", 32, "rows that trigger an immediate micro-batch flush")
	sparseThreshold := fs.Float64("sparse-threshold", serve.DefaultSparseThreshold,
		"cache decoded layers in CSR form below this density (0 disables the sparse fast path)")
	window := fs.Duration("batch-window", 2*time.Millisecond, "how long the first request waits for batch company")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	var specs []modelSpec
	fs.Func("model", "compressed model `[name=]path[:weights]` (repeatable)", func(v string) error {
		s, err := parseModelSpec(v)
		if err != nil {
			return err
		}
		specs = append(specs, s)
		return nil
	})
	fs.Parse(os.Args[1:])
	if len(specs) == 0 {
		return errors.New("at least one -model is required")
	}
	budget, err := parseBytes(*budgetStr)
	if err != nil {
		return err
	}

	reg := serve.NewRegistry(budget, serve.BatchOptions{MaxBatch: *maxBatch, Window: *window})
	defer reg.Close()
	reg.SetSparseThreshold(*sparseThreshold)
	for _, s := range specs {
		e, err := reg.LoadFile(s.name, s.path, s.weights)
		if err != nil {
			return err
		}
		m := e.Model()
		kinds := map[string]int{}
		for i := range m.Layers {
			kinds[m.Layers[i].Kind.String()]++
		}
		log.Printf("loaded %s: net %s, %d fc + %d conv layers, %d B compressed (%d B dense)",
			e.Name(), m.NetName, kinds["fc"], kinds["conv"], m.TotalBytes(), m.TotalDenseBytes())
	}
	if budget > 0 {
		log.Printf("decode cache budget: %d B", budget)
	} else {
		log.Printf("decode cache budget: unlimited")
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: serve.NewServer(reg),
		// Slow or idle clients must not pin connection goroutines forever;
		// the body limit lives in the predict handler.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", *addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down (draining for up to %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	s := reg.Cache().Stats()
	log.Printf("final cache stats: %d hits, %d misses, %d coalesced, %d evictions, %d bypasses, %.1f%% hit rate",
		s.Hits, s.Misses, s.Coalesced, s.Evictions, s.Bypasses, 100*s.HitRate())
	return nil
}
