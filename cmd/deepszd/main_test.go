package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/serve"
	"repro/internal/tensor"
)

func TestParseModelSpec(t *testing.T) {
	cases := []struct {
		in                  string
		name, path, weights string
		wantErr             bool
	}{
		{in: "model.dsz", path: "model.dsz"},
		{in: "alex=model.dsz", name: "alex", path: "model.dsz"},
		{in: "alex=model.dsz:w.bin", name: "alex", path: "model.dsz", weights: "w.bin"},
		{in: "model.dsz:w.bin", path: "model.dsz", weights: "w.bin"},
		{in: "alex=", wantErr: true},
	}
	for _, c := range cases {
		s, err := parseModelSpec(c.in)
		if (err != nil) != c.wantErr {
			t.Fatalf("parseModelSpec(%q) err=%v, wantErr=%v", c.in, err, c.wantErr)
		}
		if err == nil && (s.name != c.name || s.path != c.path || s.weights != c.weights) {
			t.Fatalf("parseModelSpec(%q) = %+v", c.in, s)
		}
	}
}

// TestServeUntilDoneDrainsInFlight locks the shutdown contract both
// daemons get from cliutil.ServeUntilDone: a predict accepted before shutdown completes during the
// drain, while new connections are refused the moment it begins.
func TestServeUntilDoneDrainsInFlight(t *testing.T) {
	rng := tensor.NewRNG(5)
	netw := nn.NewNetwork("test-mlp",
		nn.NewFlatten("flat"),
		nn.NewDense("ip1", 64, 32, rng),
		nn.NewReLU("relu1"),
		nn.NewDense("ip2", 32, 10, rng),
	)
	prune.Network(netw, map[string]float64{"ip1": 0.2, "ip2": 0.4}, 0.1)
	plan := &core.Plan{}
	for _, fc := range netw.DenseLayers() {
		plan.Choices = append(plan.Choices, core.Choice{Layer: fc.Name(), EB: 1e-3})
	}
	m, err := core.Generate(netw, plan, core.Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// A wide batch window parks the predict inside the daemon long enough
	// for shutdown to start underneath it.
	reg := serve.NewRegistry(0, serve.BatchOptions{Window: 400 * time.Millisecond, MaxBatch: 64})
	defer reg.Close()
	if _, err := reg.Add("mlp", m, netw, []int{1, 8, 8}); err != nil {
		t.Fatal(err)
	}

	srv := cliutil.NewHTTPServer(serve.NewServer(reg))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- cliutil.ServeUntilDone(ctx, srv, ln, 5*time.Second) }()

	// Wait until the daemon answers.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Put one predict in flight (it sits in the 400ms batch window).
	row := make([]float32, 64)
	tensor.NewRNG(6).FillNormal(row, 0, 1)
	body, _ := json.Marshal(struct {
		Inputs [][]float32 `json:"inputs"`
	}{[][]float32{row}})
	type result struct {
		code    int
		outputs int
		err     error
	}
	inFlight := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/models/mlp/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			inFlight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var pr struct {
			Outputs [][]float32 `json:"outputs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&pr)
		inFlight <- result{code: resp.StatusCode, outputs: len(pr.Outputs), err: err}
	}()

	// Let the predict reach the batcher, then begin shutdown under it.
	time.Sleep(100 * time.Millisecond)
	cancel()

	// New connections are refused once the listener closes. The poll
	// covers the handoff between cancel() and Shutdown's listener close.
	refusedBy := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			break // refused: the drain no longer accepts new connections
		}
		resp.Body.Close()
		if time.Now().After(refusedBy) {
			t.Fatal("new connections still accepted during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The in-flight predict must have completed normally.
	r := <-inFlight
	if r.err != nil {
		t.Fatalf("in-flight predict killed by shutdown: %v", r.err)
	}
	if r.code != http.StatusOK || r.outputs != 1 {
		t.Fatalf("in-flight predict: status %d, %d outputs; want 200 with 1 output", r.code, r.outputs)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveUntilDone: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveUntilDone never returned after drain")
	}
}
