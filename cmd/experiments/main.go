// Command experiments regenerates the paper's tables and figures on the
// scaled substrates (see DESIGN.md for the substitutions), and emits the
// serving perf trajectory.
//
// Usage:
//
//	experiments -list
//	experiments -exp table2
//	experiments -exp all
//	experiments -bench-json BENCH_serve.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1, fig2, fig4, fig5, fig6, table2, table3, table4, table5, fig7, all)")
	list := flag.Bool("list", false, "list available experiments")
	benchJSON := flag.String("bench-json", "", "measure the sparse serving fast path and write the JSON report to this `file` (\"-\" = stdout)")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if err := experiments.Run(*exp, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func writeBenchJSON(path string) error {
	if path == "-" {
		return experiments.WriteBenchServe(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteBenchServe(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
