// Command experiments regenerates the paper's tables and figures on the
// scaled substrates (see DESIGN.md for the substitutions), and emits the
// serving perf trajectory.
//
// Usage:
//
//	experiments -list
//	experiments -exp table2
//	experiments -exp all
//	experiments -bench-json BENCH_serve.json
//	experiments -bench-gateway-json BENCH_gateway.json
//	experiments -bench-delta old.json,new.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1, fig2, fig4, fig5, fig6, table2, table3, table4, table5, fig7, all)")
	list := flag.Bool("list", false, "list available experiments")
	benchJSON := flag.String("bench-json", "", "measure the sparse serving fast path and write the JSON report to this `file` (\"-\" = stdout)")
	benchGatewayJSON := flag.String("bench-gateway-json", "", "measure gateway throughput scaling over 1/2/4 in-process replicas and write the JSON report to this `file` (\"-\" = stdout)")
	benchDelta := flag.String("bench-delta", "", "compare two BENCH JSON reports by flattened numeric path: `old.json,new.json`")
	benchDeltaPct := flag.Float64("bench-delta-threshold", 5, "summarise -bench-delta metrics whose relative change is under this percentage")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}
	ranBench := false
	if *benchJSON != "" {
		ranBench = true
		if err := writeBenchJSON(*benchJSON, experiments.WriteBenchServe); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if *benchGatewayJSON != "" {
		ranBench = true
		if err := writeBenchJSON(*benchGatewayJSON, experiments.WriteBenchGateway); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if *benchDelta != "" {
		ranBench = true
		oldNew := strings.Split(*benchDelta, ",")
		if len(oldNew) != 2 {
			fmt.Fprintln(os.Stderr, "experiments: -bench-delta wants old.json,new.json")
			os.Exit(1)
		}
		if err := experiments.WriteBenchDelta(os.Stdout, oldNew[0], oldNew[1], *benchDeltaPct); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if ranBench {
		return
	}
	if err := experiments.Run(*exp, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func writeBenchJSON(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
