package repro_test

// One benchmark per table/figure of the paper's evaluation (§5), plus
// ablation benches for the design choices DESIGN.md calls out. The heavier
// experiment *reports* live in cmd/experiments; these benchmarks time the
// operations each experiment is built from, on the same cached prepared
// networks.

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/deepcomp"
	"repro/internal/experiments"
	"repro/internal/lossless"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/serve"
	"repro/internal/sz"
	"repro/internal/tensor"
	"repro/internal/weightless"
	"repro/internal/zfp"
)

// fc6Data returns the pruned data and index arrays of AlexNet-s fc6, the
// canonical compressor workload of Figures 2 and 4.
func fc6Data(b *testing.B) (*experiments.Prepared, *prune.Sparse) {
	b.Helper()
	p, err := experiments.Prepare(models.AlexNetS)
	if err != nil {
		b.Fatal(err)
	}
	return p, prune.Encode(p.Pruned.DenseLayers()[0].Weights())
}

// BenchmarkTable1Forward times one 100-image forward pass of each scaled
// network (the fwd-time columns of Table 1).
func BenchmarkTable1Forward(b *testing.B) {
	for _, name := range models.All() {
		p, err := experiments.Prepare(name)
		if err != nil {
			b.Fatal(err)
		}
		idx := make([]int, 100)
		for i := range idx {
			idx[i] = i % p.Test.Len()
		}
		x, _ := p.Test.Batch(idx)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Trained.Net.Forward(x, false)
			}
		})
	}
}

// BenchmarkFig2SZvsZFP times the two lossy compressors on the fc6 data
// array at the middle error bound of Figure 2.
func BenchmarkFig2SZvsZFP(b *testing.B) {
	_, sp := fc6Data(b)
	b.Run("sz/eb=1e-3", func(b *testing.B) {
		b.SetBytes(int64(4 * len(sp.Data)))
		for i := 0; i < b.N; i++ {
			if _, err := sz.Compress(sp.Data, sz.Options{ErrorBound: 1e-3}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("zfp/eb=1e-3", func(b *testing.B) {
		b.SetBytes(int64(4 * len(sp.Data)))
		for i := 0; i < b.N; i++ {
			if _, err := zfp.Compress(sp.Data, zfp.Options{Mode: zfp.ModeAccuracy, Tolerance: 1e-3}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig4Lossless times the three lossless back-ends on the fc6 index
// array (Figure 4's workload).
func BenchmarkFig4Lossless(b *testing.B) {
	_, sp := fc6Data(b)
	idx := make([]byte, len(sp.Index))
	copy(idx, sp.Index)
	for _, c := range lossless.All() {
		b.Run(c.Name(), func(b *testing.B) {
			b.SetBytes(int64(len(idx)))
			for i := 0; i < b.N; i++ {
				c.Compress(idx)
			}
		})
	}
}

// BenchmarkFig5Assessment times Algorithm 1 on LeNet-300-100 — the
// dominant cost of DeepSZ encoding (Figures 3/5 are its raw data).
func BenchmarkFig5Assessment(b *testing.B) {
	p, err := experiments.Prepare(models.LeNet300)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.PipelineConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Assess(p.Pruned, p.Test, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Evaluate times one cached-feature accuracy test, the unit of
// work behind the Figure 6 linearity study.
func BenchmarkFig6Evaluate(b *testing.B) {
	p, err := experiments.Prepare(models.AlexNetS)
	if err != nil {
		b.Fatal(err)
	}
	split := p.Pruned.FirstDenseIndex()
	features := p.Pruned.FeatureCache(split, p.Test, 100)
	suffix := p.Pruned.CloneRange(split, len(p.Pruned.Layers))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		suffix.EvaluateFrom(0, features, p.Test, 100)
	}
}

// BenchmarkTable2Pipeline times the full DeepSZ encode (steps 2–4) on
// LeNet-300-100, the pipeline behind Table 2.
func BenchmarkTable2Pipeline(b *testing.B) {
	p, err := experiments.Prepare(models.LeNet300)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.PipelineConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Encode(p.Pruned, p.Test, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Reconstruct times model decode+apply+evaluate, the
// verification loop behind Table 3.
func BenchmarkTable3Reconstruct(b *testing.B) {
	p, err := experiments.Prepare(models.LeNet300)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recon := p.Pruned.Clone()
		if _, err := p.Result.Model.Apply(recon); err != nil {
			b.Fatal(err)
		}
		recon.Evaluate(p.Test, 100)
	}
}

// BenchmarkTable4Baselines times the three encoders on the fc6 layer
// (Table 4 compares their output sizes).
func BenchmarkTable4Baselines(b *testing.B) {
	p, sp := fc6Data(b)
	dense := p.Pruned.DenseLayers()[0].Weights()
	b.Run("deepsz-sz", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sz.Compress(sp.Data, sz.Options{ErrorBound: 1e-2}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("deepcomp-5bit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := deepcomp.CompressLayer(dense, deepcomp.Options{Bits: 5}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("weightless-bloomier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := weightless.Encode(dense, weightless.Options{ValueBits: 4, CheckBits: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable5Quantize times the bit-width-matched quantization behind
// Table 5.
func BenchmarkTable5Quantize(b *testing.B) {
	p, _ := fc6Data(b)
	dense := p.Pruned.DenseLayers()[0].Weights()
	for i := 0; i < b.N; i++ {
		c, err := deepcomp.CompressLayer(dense, deepcomp.Options{Bits: 3})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Decompress(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Decode times the three decoders (Figure 7b).
func BenchmarkFig7Decode(b *testing.B) {
	p, sp := fc6Data(b)
	dense := p.Pruned.DenseLayers()[0].Weights()

	b.Run("deepsz", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			recon := p.Pruned.Clone()
			if _, err := p.Result.Model.Apply(recon); err != nil {
				b.Fatal(err)
			}
		}
	})
	dc, err := deepcomp.CompressLayer(dense, deepcomp.Options{Bits: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("deepcomp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dc.Decompress(); err != nil {
				b.Fatal(err)
			}
		}
	})
	wl, err := weightless.Encode(dense, weightless.Options{ValueBits: 4, CheckBits: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("weightless", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wl.Decompress()
		}
	})
	_ = sp
}

// BenchmarkFig7EncodeDeepSZ times generation (step 4) alone — the encode
// path once assessment data exists.
func BenchmarkFig7EncodeDeepSZ(b *testing.B) {
	p, err := experiments.Prepare(models.LeNet300)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.PipelineConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Generate(p.Pruned, p.Result.Plan, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPredictor compares SZ's adaptive predictor against
// Lorenzo-only and regression-only on the fc6 data array (DESIGN.md §5).
func BenchmarkAblationPredictor(b *testing.B) {
	_, sp := fc6Data(b)
	for _, tc := range []struct {
		name string
		opts sz.Options
	}{
		{"adaptive", sz.Options{ErrorBound: 1e-3}},
		{"lorenzo-only", sz.Options{ErrorBound: 1e-3, DisableRegression: true}},
		{"regression-only", sz.Options{ErrorBound: 1e-3, DisableLorenzo: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var blob []byte
			for i := 0; i < b.N; i++ {
				var err error
				blob, err = sz.Compress(sp.Data, tc.opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sz.Ratio(len(sp.Data), blob), "ratio")
		})
	}
}

// BenchmarkAblationLosslessStage measures the SZ pipeline with and without
// its final lossless stage.
func BenchmarkAblationLosslessStage(b *testing.B) {
	_, sp := fc6Data(b)
	for _, tc := range []struct {
		name string
		opts sz.Options
	}{
		{"with-lossless", sz.Options{ErrorBound: 1e-3}},
		{"without-lossless", sz.Options{ErrorBound: 1e-3, DisableLossless: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var blob []byte
			for i := 0; i < b.N; i++ {
				var err error
				blob, err = sz.Compress(sp.Data, tc.opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sz.Ratio(len(sp.Data), blob), "ratio")
		})
	}
}

// BenchmarkExperimentReports runs the cheap report generators end to end so
// `go test -bench` exercises the same code paths as cmd/experiments.
func BenchmarkExperimentReports(b *testing.B) {
	for _, id := range []string{"fig2", "fig4", "table3"} {
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := experiments.Run(id, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// codecBenchNet builds a pruned MLP with eight equal-sized fc layers.
// Layer-level parallelism in Generate/Decode only shows on balanced
// layers; the paper's networks (fc6 ≫ fc7 ≫ fc8) are dominated by one
// layer and would hide the scaling.
func codecBenchNet() (*nn.Network, *core.Plan) {
	rng := tensor.NewRNG(77)
	layers := []nn.Layer{nn.NewFlatten("flat")}
	ratios := map[string]float64{}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("fc%d", i)
		layers = append(layers, nn.NewDense(name, 256, 256, rng), nn.NewReLU(name+"-relu"))
		ratios[name] = 0.1
	}
	net := nn.NewNetwork("codec-bench", layers...)
	prune.Network(net, ratios, 0.1)
	plan := &core.Plan{}
	for _, fc := range net.DenseLayers() {
		plan.Choices = append(plan.Choices, core.Choice{Layer: fc.Name(), EB: 1e-3})
	}
	return net, plan
}

// benchCodecs are the registered lossy back-ends the Generate/Decode
// benchmarks sweep.
var benchCodecs = []string{"sz", "zfp", "deepcomp"}

// BenchmarkGenerate times compressed-model generation per codec, serial
// (workers=1) vs parallel (workers=4), asserting the parallel output is
// byte-identical to the serial one.
func BenchmarkGenerate(b *testing.B) {
	net, plan := codecBenchNet()
	for _, name := range benchCodecs {
		cdc, err := codec.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		cfgFor := func(workers int) core.Config {
			return core.Config{ExpectedAccuracyLoss: 0.01, Workers: workers, Codec: cdc.ID()}
		}
		serial, err := core.Generate(net, plan, cfgFor(1))
		if err != nil {
			b.Fatal(err)
		}
		parallel, err := core.Generate(net, plan, cfgFor(4))
		if err != nil {
			b.Fatal(err)
		}
		if !bytes.Equal(serial.Marshal(), parallel.Marshal()) {
			b.Fatalf("%s: parallel Generate output differs from serial", name)
		}
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(b *testing.B) {
				cfg := cfgFor(workers)
				for i := 0; i < b.N; i++ {
					if _, err := core.Generate(net, plan, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDecode times full-model decoding per codec, serial vs parallel.
func BenchmarkDecode(b *testing.B) {
	net, plan := codecBenchNet()
	for _, name := range benchCodecs {
		cdc, err := codec.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		m, err := core.Generate(net, plan, core.Config{ExpectedAccuracyLoss: 0.01, Codec: cdc.ID()})
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := m.DecodeWith(workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSparseForward sweeps weight density for the fc forward kernel,
// dense vs CSR, on an AlexNet-fc-shaped layer — the same shape, densities,
// and experiments.Sparsify workload as the cmd/experiments -bench-json
// kernel sweep, so this benchmark and BENCH_serve.json stay comparable.
// At the paper's ~10% density the CSR path must be well over 2× faster
// (the acceptance bar BENCH_serve.json records); past the ~30–50%
// break-even the dense kernel wins, which is why serving defaults to
// DefaultSparseThreshold.
func BenchmarkSparseForward(b *testing.B) {
	rng := tensor.NewRNG(55)
	const out, in, batch = 256, 2048, 16
	d := nn.NewDense("fc", in, out, rng)
	x := tensor.New(batch, in)
	rng.FillNormal(x.Data, 0, 1)
	for _, density := range []float64{0.05, 0.1, 0.25, 0.5, 1} {
		w := append([]float32(nil), d.W.W.Data...)
		experiments.Sparsify(rng, w, density)
		csr := tensor.CSRFromDense(w, out, in)
		b.Run(fmt.Sprintf("dense/d=%v", density), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.ForwardWith(x, w, nil)
			}
		})
		b.Run(fmt.Sprintf("csr/d=%v", density), func(b *testing.B) {
			b.ReportMetric(float64(csr.Bytes())/float64(4*len(w)), "resident-frac")
			for i := 0; i < b.N; i++ {
				d.ForwardSparse(x, csr, nil)
			}
		})
	}
}

// BenchmarkServing compares the two ways of answering a predict request
// against a compressed model: decoding the whole model per request
// (full-decode) vs the serve engine's layer-granular decode cache under
// different byte budgets. extra-B reports the peak extra memory each
// strategy materialises for fc weights; rows/s is serving throughput.
func BenchmarkServing(b *testing.B) {
	p, err := experiments.Prepare(models.AlexNetS)
	if err != nil {
		b.Fatal(err)
	}
	m := p.Result.Model
	shape, err := models.InputShape(models.AlexNetS)
	if err != nil {
		b.Fatal(err)
	}
	denseTotal := m.TotalDenseBytes()
	const rows = 16
	inLen := 1
	for _, d := range shape {
		inLen *= d
	}
	batch := make([][]float32, rows)
	flat := make([]float32, rows*inLen)
	rng := tensor.NewRNG(123)
	rng.FillNormal(flat, 0, 1)
	for i := range batch {
		batch[i] = flat[i*inLen : (i+1)*inLen]
	}
	x := tensor.FromSlice(flat, append([]int{rows}, shape...)...)

	b.Run("full-decode", func(b *testing.B) {
		net := p.Pruned.Clone()
		for i := 0; i < b.N; i++ {
			// A naive server decodes every fc layer for each request.
			if _, err := m.Apply(net); err != nil {
				b.Fatal(err)
			}
			net.Forward(x, false)
		}
		b.ReportMetric(float64(denseTotal), "extra-B")
		b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
	// The sparse-vs-dense axis: the same byte budget fits more layers when
	// sparse-enough ones are cached as CSR, so at a fixed budget the
	// sparse path should report both a higher hit rate and more rows/s.
	for _, tc := range []struct {
		name      string
		budget    int64
		threshold float64
	}{
		{"cached-unlimited", 0, serve.DefaultSparseThreshold},
		{"cached-one-layer/dense", m.MaxDenseBytes(), 0},
		{"cached-one-layer/sparse", m.MaxDenseBytes(), serve.DefaultSparseThreshold},
	} {
		b.Run(tc.name, func(b *testing.B) {
			reg := serve.NewRegistry(tc.budget, serve.BatchOptions{})
			defer reg.Close()
			reg.SetSparseThreshold(tc.threshold)
			eng, err := reg.Add("bench", m, p.Pruned, shape)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Predict(batch); err != nil { // warm the cache
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Predict(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			extra := tc.budget
			if extra == 0 {
				extra = denseTotal
			}
			s := reg.Cache().Stats()
			b.ReportMetric(float64(extra), "extra-B")
			b.ReportMetric(100*s.HitRate(), "hit-%")
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkGateway drives an in-process gateway + 1/2/4-replica cluster
// through real HTTP with the multi-model closed-loop load of
// BENCH_gateway.json. Replica budgets hold ~3 of the 8 models, so the
// throughput (and the hit-% metric explaining it) measures what
// rendezvous affinity buys: the fleet's aggregate decode cache holds a
// working set no single replica can.
func BenchmarkGateway(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := experiments.BenchGatewayPoint(n)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(p.RowsPerSec, "rows/s")
				b.ReportMetric(100*p.HitRate, "hit-%")
			}
		})
	}
}
