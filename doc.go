// Package repro is a from-scratch Go reproduction of DeepSZ (Jin et al.,
// HPDC 2019): a DNN compression framework built on error-bounded lossy
// compression. The framework lives in internal/core; every substrate it
// needs (DNN engine, SZ and ZFP compressors, lossless back-ends, pruning,
// and the Deep Compression / Weightless baselines) is implemented in the
// internal packages. See README.md for the tour and DESIGN.md for the
// paper-to-module map.
//
// The repository-level benchmarks in bench_test.go regenerate the paper's
// tables and figures; cmd/experiments prints them as reports.
package repro
